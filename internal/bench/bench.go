// Package bench implements the paper-reproduction experiment harness:
// one experiment per table and figure of the evaluation section
// (Section 5, Figure 11 panels (a)–(f), Table 4 parameters), plus the
// ablation studies DESIGN.md calls out. cmd/benchrunner drives it from
// the command line and bench_test.go wraps the same experiments as
// testing.B benchmarks.
package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"pcqe/internal/strategy"
	"pcqe/internal/workload"
)

// Table is a formatted experiment result: one row per x-value, one
// column per measured series.
type Table struct {
	Title   string
	XLabel  string
	Columns []string
	Rows    []RowData
	// Notes carries the paper-shape expectation for EXPERIMENTS.md.
	Notes string
}

// RowData is one row of measurements keyed by column name.
type RowData struct {
	X      string
	Values map[string]float64
}

// Format renders the table as aligned text. Durations are in seconds,
// costs in cost units.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns)+1)
	widths[0] = len(t.XLabel)
	for _, r := range t.Rows {
		if len(r.X) > widths[0] {
			widths[0] = len(r.X)
		}
	}
	cells := func(r RowData) []string {
		out := []string{r.X}
		for _, c := range t.Columns {
			v, ok := r.Values[c]
			if !ok {
				out = append(out, "-")
				continue
			}
			out = append(out, fmt.Sprintf("%.4g", v))
		}
		return out
	}
	for i, c := range t.Columns {
		widths[i+1] = len(c)
	}
	for _, r := range t.Rows {
		for i, cell := range cells(r) {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(row []string) {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		b.WriteString("\n")
	}
	writeRow(append([]string{t.XLabel}, t.Columns...))
	for _, r := range t.Rows {
		writeRow(cells(r))
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "shape: %s\n", t.Notes)
	}
	return b.String()
}

// Options tune the experiment scale.
type Options struct {
	// Full runs the paper's complete parameter grid (several minutes);
	// otherwise a reduced grid that finishes quickly.
	Full bool
	// Seed makes workloads reproducible.
	Seed int64
	// Workers sets the D&C worker-pool width for the parallel scaling
	// experiment's size sweep (0 = GOMAXPROCS).
	Workers int
}

// DefaultOptions returns the quick configuration with seed 1.
func DefaultOptions() Options { return Options{Seed: 1} }

// timeSolve runs the solver once and reports duration and plan.
func timeSolve(s strategy.Solver, in *strategy.Instance) (time.Duration, *strategy.Plan, error) {
	start := time.Now()
	plan, err := s.Solve(in)
	return time.Since(start), plan, err
}

// tinyInstance builds the Figure 11(a)/(d) configuration: 10 base
// tuples, results over 5 tuples each, at least 3 results required at
// β = 0.6. The initial confidences sit at 0.3–0.5 instead of the
// paper's 0.1 so each tuple's δ-grid domain has ~6 values rather than
// ~10; the exhaustive Naive baseline then finishes in seconds on modern
// hardware instead of the paper's minutes on 2008 hardware, while the
// relative ordering of the pruning variants — the figure's point — is
// unchanged (run with Full for bigger domains).
func tinyInstance(seed int64, full bool) (*strategy.Instance, error) {
	p := workload.Params{
		DataSize:        10,
		TuplesPerResult: 5,
		Delta:           0.1,
		Theta:           0.5,
		Beta:            0.6,
		Results:         6,
		ConfLo:          0.3,
		ConfHi:          0.5,
		Seed:            seed,
	}
	if full {
		p.ConfLo, p.ConfHi = 0.15, 0.35
	}
	in, err := workload.Generate(p)
	if err != nil {
		return nil, err
	}
	in.Need = 3
	return in, nil
}

// heuristicVariants are the Figure 11(a)/(d) bars.
func heuristicVariants(greedyBound bool) []struct {
	name string
	h    *strategy.Heuristic
} {
	return []struct {
		name string
		h    *strategy.Heuristic
	}{
		{"Naive", &strategy.Heuristic{GreedyBound: greedyBound}},
		{"H1", &strategy.Heuristic{UseH1: true, GreedyBound: greedyBound}},
		{"H2", &strategy.Heuristic{UseH2: true, GreedyBound: greedyBound}},
		{"H3", &strategy.Heuristic{UseH3: true, GreedyBound: greedyBound}},
		{"H4", &strategy.Heuristic{UseH4: true, GreedyBound: greedyBound}},
		{"All", &strategy.Heuristic{UseH1: true, UseH2: true, UseH3: true, UseH4: true, GreedyBound: greedyBound}},
	}
}

// Fig11a measures the heuristic variants without the greedy-seeded
// bound (Figure 11(a)): response time per variant.
func Fig11a(opt Options) (*Table, error) {
	return figHeuristicVariants(opt, false,
		"Figure 11(a): heuristic variants, no greedy bound",
		"every heuristic beats Naive; All is fastest by a wide margin")
}

// Fig11d measures the heuristic variants with the greedy-seeded bound
// (Figure 11(d)).
func Fig11d(opt Options) (*Table, error) {
	return figHeuristicVariants(opt, true,
		"Figure 11(d): heuristic variants, greedy-seeded bound",
		"the greedy bound speeds up every variant versus Figure 11(a)")
}

func figHeuristicVariants(opt Options, bound bool, title, notes string) (*Table, error) {
	t := &Table{
		Title:   title,
		XLabel:  "variant",
		Columns: []string{"time_s", "nodes", "cost"},
		Notes:   notes,
	}
	// Average over a few seeds: tiny instances vary a lot.
	seeds := []int64{opt.Seed, opt.Seed + 1, opt.Seed + 2}
	if opt.Full {
		for s := opt.Seed + 3; s < opt.Seed+10; s++ {
			seeds = append(seeds, s)
		}
	}
	for _, v := range heuristicVariants(bound) {
		var total time.Duration
		var nodes, runs int
		var cost float64
		for _, seed := range seeds {
			in, err := tinyInstance(seed, opt.Full)
			if err != nil {
				return nil, err
			}
			d, plan, err := timeSolve(v.h, in)
			if err == strategy.ErrInfeasible {
				continue
			}
			if err != nil {
				return nil, fmt.Errorf("%s seed %d: %w", v.name, seed, err)
			}
			total += d
			nodes += plan.Nodes
			cost += plan.Cost
			runs++
		}
		if runs == 0 {
			continue
		}
		t.Rows = append(t.Rows, RowData{X: v.name, Values: map[string]float64{
			"time_s": total.Seconds() / float64(runs),
			"nodes":  float64(nodes) / float64(runs),
			"cost":   cost / float64(runs),
		}})
	}
	return t, nil
}

// Fig11be measures the one-phase vs two-phase greedy over growing data
// sizes and returns Figure 11(b) (response time) and Figure 11(e)
// (minimum cost).
func Fig11be(opt Options) (*Table, *Table, error) {
	sizes := []int{1000, 3000, 5000}
	if opt.Full {
		sizes = []int{1000, 3000, 5000, 7000, 9000}
	}
	timeT := &Table{
		Title:   "Figure 11(b): greedy one-phase vs two-phase, response time",
		XLabel:  "data size",
		Columns: []string{"one-phase_s", "two-phase_s"},
		Notes:   "both versions have similar response time (phase 2 overhead is negligible)",
	}
	costT := &Table{
		Title:   "Figure 11(e): greedy one-phase vs two-phase, cost",
		XLabel:  "data size",
		Columns: []string{"one-phase", "two-phase", "reduction_%"},
		Notes:   "the second phase reduces cost (the paper reports >30%)",
	}
	for _, n := range sizes {
		in1, err := workload.Generate(workload.Params{
			DataSize: n, TuplesPerResult: 5, Delta: 0.1, Theta: 0.5, Beta: 0.6, Seed: opt.Seed,
		})
		if err != nil {
			return nil, nil, err
		}
		in2, err := workload.Generate(workload.Params{
			DataSize: n, TuplesPerResult: 5, Delta: 0.1, Theta: 0.5, Beta: 0.6, Seed: opt.Seed,
		})
		if err != nil {
			return nil, nil, err
		}
		d1, p1, err := timeSolve(&strategy.Greedy{SkipRefinement: true}, in1)
		if err != nil {
			return nil, nil, err
		}
		d2, p2, err := timeSolve(&strategy.Greedy{}, in2)
		if err != nil {
			return nil, nil, err
		}
		x := sizeLabel(n)
		timeT.Rows = append(timeT.Rows, RowData{X: x, Values: map[string]float64{
			"one-phase_s": d1.Seconds(),
			"two-phase_s": d2.Seconds(),
		}})
		costT.Rows = append(costT.Rows, RowData{X: x, Values: map[string]float64{
			"one-phase":   p1.Cost,
			"two-phase":   p2.Cost,
			"reduction_%": 100 * (p1.Cost - p2.Cost) / p1.Cost,
		}})
	}
	return timeT, costT, nil
}

// Fig11cf measures all three algorithms over the full size sweep and
// returns Figure 11(c) (response time) and Figure 11(f) (minimum cost).
// The heuristic runs only on the tiny size (its complexity is
// exponential); greedy is skipped beyond 50K in quick mode.
func Fig11cf(opt Options) (*Table, *Table, error) {
	sizes := []int{10, 1000, 5000, 10000}
	if opt.Full {
		sizes = []int{10, 1000, 5000, 10000, 50000, 100000}
	}
	timeT := &Table{
		Title:   "Figure 11(c): all algorithms, response time vs data size",
		XLabel:  "data size",
		Columns: []string{"heuristic_s", "greedy_s", "dnc_s"},
		Notes:   "heuristic only feasible at tiny sizes; greedy wins small, D&C scales best and overtakes as size grows",
	}
	costT := &Table{
		Title:   "Figure 11(f): all algorithms, minimum cost vs data size",
		XLabel:  "data size",
		Columns: []string{"heuristic", "greedy", "dnc"},
		Notes:   "heuristic is optimal where it runs; greedy and D&C land slightly above the optimum and close to each other",
	}
	for _, n := range sizes {
		tuples := 5
		if n >= 10000 {
			tuples = n / 1000
		}
		gen := func() (*strategy.Instance, error) {
			// The tiny size is the heuristic-friendly Figure 11(a)
			// instance; larger sizes follow Table 4.
			if n <= 10 {
				return tinyInstance(opt.Seed, opt.Full)
			}
			return workload.Generate(workload.Params{
				DataSize: n, TuplesPerResult: tuples, Delta: 0.1,
				Theta: 0.5, Beta: 0.6, Seed: opt.Seed,
			})
		}
		x := sizeLabel(n)
		timeVals := map[string]float64{}
		costVals := map[string]float64{}

		if n <= 10 {
			in, err := gen()
			if err != nil {
				return nil, nil, err
			}
			d, plan, err := timeSolve(strategy.NewHeuristic(), in)
			if err != nil {
				return nil, nil, err
			}
			timeVals["heuristic_s"] = d.Seconds()
			costVals["heuristic"] = plan.Cost
		}
		{
			in, err := gen()
			if err != nil {
				return nil, nil, err
			}
			d, plan, err := timeSolve(&strategy.Greedy{}, in)
			if err != nil {
				return nil, nil, err
			}
			timeVals["greedy_s"] = d.Seconds()
			costVals["greedy"] = plan.Cost
		}
		{
			in, err := gen()
			if err != nil {
				return nil, nil, err
			}
			d, plan, err := timeSolve(strategy.NewDivideAndConquer(), in)
			if err != nil {
				return nil, nil, err
			}
			timeVals["dnc_s"] = d.Seconds()
			costVals["dnc"] = plan.Cost
		}
		timeT.Rows = append(timeT.Rows, RowData{X: x, Values: timeVals})
		costT.Rows = append(costT.Rows, RowData{X: x, Values: costVals})
	}
	return timeT, costT, nil
}

// Table4 renders the evaluation parameters (Table 4 of the paper).
func Table4() *Table {
	p := workload.DefaultParams()
	t := &Table{
		Title:   "Table 4: parameters and their settings (defaults in use)",
		XLabel:  "parameter",
		Columns: []string{"default"},
		Notes:   "grid: sizes 10..100K, tuples/result 5..100, δ=0.1, θ=50%, β=0.6",
	}
	t.Rows = []RowData{
		{X: "Data size", Values: map[string]float64{"default": float64(p.DataSize)}},
		{X: "No. of base tuples per result", Values: map[string]float64{"default": float64(p.TuplesPerResult)}},
		{X: "Confidence increment step δ", Values: map[string]float64{"default": p.Delta}},
		{X: "Percentage of required results θ", Values: map[string]float64{"default": p.Theta}},
		{X: "Confidence level β", Values: map[string]float64{"default": p.Beta}},
	}
	return t
}

func sizeLabel(n int) string {
	if n >= 1000 && n%1000 == 0 {
		return fmt.Sprintf("%dK", n/1000)
	}
	return fmt.Sprintf("%d", n)
}

// Run dispatches an experiment by name. Known names: table4, 11a, 11b,
// 11c, 11d, 11e, 11f, ablations, all.
func Run(name string, opt Options) ([]*Table, error) {
	switch strings.ToLower(strings.TrimPrefix(name, "fig")) {
	case "table4":
		return []*Table{Table4()}, nil
	case "11a":
		t, err := Fig11a(opt)
		return []*Table{t}, err
	case "11d":
		t, err := Fig11d(opt)
		return []*Table{t}, err
	case "11b":
		t, _, err := Fig11be(opt)
		return []*Table{t}, err
	case "11e":
		_, t, err := Fig11be(opt)
		return []*Table{t}, err
	case "11c":
		t, _, err := Fig11cf(opt)
		return []*Table{t}, err
	case "11f":
		_, t, err := Fig11cf(opt)
		return []*Table{t}, err
	case "ablations":
		return Ablations(opt)
	case "compiled":
		t, err := AblationCompiled(opt)
		return []*Table{t}, err
	case "pipeline":
		t, err := FrameworkOverhead(opt)
		return []*Table{t}, err
	case "parallel":
		return FigParallel(opt)
	case "planner":
		return FigPlanner(opt)
	case "all":
		var out []*Table
		out = append(out, Table4())
		a, err := Fig11a(opt)
		if err != nil {
			return nil, err
		}
		d, err := Fig11d(opt)
		if err != nil {
			return nil, err
		}
		b, e, err := Fig11be(opt)
		if err != nil {
			return nil, err
		}
		c, f, err := Fig11cf(opt)
		if err != nil {
			return nil, err
		}
		out = append(out, a, b, c, d, e, f)
		abl, err := Ablations(opt)
		if err != nil {
			return nil, err
		}
		out = append(out, abl...)
		pipe, err := FrameworkOverhead(opt)
		if err != nil {
			return nil, err
		}
		out = append(out, pipe)
		par, err := FigParallel(opt)
		if err != nil {
			return nil, err
		}
		out = append(out, par...)
		pl, err := FigPlanner(opt)
		if err != nil {
			return nil, err
		}
		return append(out, pl...), nil
	}
	return nil, fmt.Errorf("bench: unknown experiment %q (try table4, 11a..11f, ablations, all)", name)
}

// Names lists all experiment names Run accepts, sorted.
func Names() []string {
	names := []string{"table4", "11a", "11b", "11c", "11d", "11e", "11f", "ablations", "compiled", "pipeline", "parallel", "planner", "all"}
	sort.Strings(names)
	return names
}
