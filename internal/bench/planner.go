package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"time"

	"pcqe/internal/relation"
	"pcqe/internal/sql"
)

// FigPlanner measures the cost-based planner against the rule-based
// statement-order baseline on a star-schema join whose statement order
// is deliberately bad (the selective dimension filter comes last), and
// sweeps the plan cache with a repeated query-template workload. It
// also writes the machine-readable artifact BENCH_planner.json to the
// current directory.
//
// Schema: fact(id, d1, d2, amount) with N rows; dim1/dim2(k, attr)
// with N/10 rows each, attr uniform in [0,100). Query:
//
//	SELECT fact.amount, dim1.attr, dim2.attr
//	FROM fact JOIN dim1 ON fact.d1 = dim1.k
//	          JOIN dim2 ON fact.d2 = dim2.k
//	WHERE dim2.attr = <v>
//
// Statement order joins the full fact table with dim1 first; the
// cost-based plan pushes the dim2 filter down and joins the ~N/1000-row
// filtered dimension against fact before touching dim1.
func FigPlanner(opt Options) ([]*Table, error) {
	sizes := []int{10_000, 50_000, 100_000}
	if opt.Full {
		sizes = append(sizes, 1_000_000)
	}

	order := &Table{
		Title:   "Planner: cost-based join order vs statement order (star join, selective filter last)",
		XLabel:  "fact rows",
		Columns: []string{"rule_ms", "cost_ms", "speedup", "rows"},
		Notes:   "cost-based should win and the gap widen with N: the rule-based plan materializes two full-width N-row intermediates before filtering",
	}

	type sizeResult struct {
		N       int     `json:"n"`
		RuleMS  float64 `json:"rule_ms"`
		CostMS  float64 `json:"cost_ms"`
		Speedup float64 `json:"speedup"`
		Rows    int     `json:"rows"`
	}
	artifact := struct {
		Experiment string       `json:"experiment"`
		Seed       int64        `json:"seed"`
		Full       bool         `json:"full"`
		Sizes      []sizeResult `json:"sizes"`
		PlanCache  struct {
			Queries        int     `json:"queries"`
			Templates      int     `json:"templates"`
			Hits           int64   `json:"hits"`
			Misses         int64   `json:"misses"`
			HitRate        float64 `json:"hit_rate"`
			CachedUSPerQ   float64 `json:"cached_us_per_query"`
			UncachedUSPerQ float64 `json:"uncached_us_per_query"`
			PlanOnlyUSPerQ float64 `json:"plan_only_us_per_query"`
		} `json:"plan_cache"`
	}{Experiment: "planner", Seed: opt.Seed, Full: opt.Full}

	const query = "SELECT fact.amount, dim1.attr, dim2.attr " +
		"FROM fact JOIN dim1 ON fact.d1 = dim1.k JOIN dim2 ON fact.d2 = dim2.k " +
		"WHERE dim2.attr = 7"

	for _, n := range sizes {
		cat, err := starCatalog(n, opt.Seed)
		if err != nil {
			return nil, err
		}
		stmt, err := sql.Parse(query)
		if err != nil {
			return nil, err
		}
		ruleDur, ruleRows, err := timePlanAndRun(cat, func(int64) (relation.Operator, error) {
			return sql.PlanRuleBased(cat, stmt)
		})
		if err != nil {
			return nil, err
		}
		costDur, costRows, err := timePlanAndRun(cat, func(asOf int64) (relation.Operator, error) {
			return sql.PlanAt(cat, stmt, asOf)
		})
		if err != nil {
			return nil, err
		}
		if ruleRows != costRows {
			return nil, fmt.Errorf("bench: planner differential mismatch at N=%d: rule-based %d rows, cost-based %d rows", n, ruleRows, costRows)
		}
		speedup := ruleDur.Seconds() / costDur.Seconds()
		order.Rows = append(order.Rows, RowData{X: sizeLabel(n), Values: map[string]float64{
			"rule_ms": float64(ruleDur.Microseconds()) / 1000,
			"cost_ms": float64(costDur.Microseconds()) / 1000,
			"speedup": speedup,
			"rows":    float64(costRows),
		}})
		artifact.Sizes = append(artifact.Sizes, sizeResult{
			N: n, RuleMS: float64(ruleDur.Microseconds()) / 1000,
			CostMS: float64(costDur.Microseconds()) / 1000, Speedup: speedup, Rows: costRows,
		})
	}

	// Plan-cache sweep: a bounded set of query templates issued many
	// times in round-robin order. Every template misses once and hits
	// thereafter; with 20 templates × 25 repetitions the steady-state
	// hit rate is 96%.
	const templates = 20
	const reps = 25
	cacheN := 500
	cat, err := starCatalog(cacheN, opt.Seed)
	if err != nil {
		return nil, err
	}
	queries := make([]string, templates)
	for i := range queries {
		queries[i] = fmt.Sprintf(
			"SELECT fact.amount, dim1.attr, dim2.attr FROM fact JOIN dim1 ON fact.d1 = dim1.k JOIN dim2 ON fact.d2 = dim2.k WHERE dim2.attr = %d", i)
	}
	pc := sql.NewPlanCache(64)
	cachedStart := time.Now()
	for r := 0; r < reps; r++ {
		for _, q := range queries {
			if _, _, err := pc.Query(cat, q); err != nil {
				return nil, err
			}
		}
	}
	cachedDur := time.Since(cachedStart)
	uncachedStart := time.Now()
	for r := 0; r < reps; r++ {
		for _, q := range queries {
			if _, _, err := sql.Query(cat, q); err != nil {
				return nil, err
			}
		}
	}
	uncachedDur := time.Since(uncachedStart)

	// Planning-only cost: what every cache hit avoids (parse is paid on
	// both paths; execution dominates at this scale, so the end-to-end
	// cached/uncached columns mostly bound the cache's overhead).
	planStart := time.Now()
	for r := 0; r < reps; r++ {
		for _, q := range queries {
			stmt, err := sql.Parse(q)
			if err != nil {
				return nil, err
			}
			if _, _, err := sql.PlanDetailed(cat, stmt); err != nil {
				return nil, err
			}
		}
	}
	planDur := time.Since(planStart)

	hits, misses := pc.Stats()
	total := templates * reps
	hitRate := float64(hits) / float64(total)
	artifact.PlanCache.Queries = total
	artifact.PlanCache.Templates = templates
	artifact.PlanCache.Hits = hits
	artifact.PlanCache.Misses = misses
	artifact.PlanCache.HitRate = hitRate
	artifact.PlanCache.CachedUSPerQ = float64(cachedDur.Microseconds()) / float64(total)
	artifact.PlanCache.UncachedUSPerQ = float64(uncachedDur.Microseconds()) / float64(total)
	artifact.PlanCache.PlanOnlyUSPerQ = float64(planDur.Microseconds()) / float64(total)

	cache := &Table{
		Title:   "Plan cache: repeated query templates (20 templates x 25 reps, N=500)",
		XLabel:  "series",
		Columns: []string{"queries", "hits", "misses", "hit_rate", "us_per_query"},
		Notes:   "hit rate should reach (reps-1)/reps = 96%; the plan-only row is the per-query planning cost a cache hit avoids",
	}
	cache.Rows = append(cache.Rows,
		RowData{X: "cached", Values: map[string]float64{
			"queries": float64(total), "hits": float64(hits), "misses": float64(misses),
			"hit_rate": hitRate, "us_per_query": artifact.PlanCache.CachedUSPerQ,
		}},
		RowData{X: "uncached", Values: map[string]float64{
			"queries": float64(total), "us_per_query": artifact.PlanCache.UncachedUSPerQ,
		}},
		RowData{X: "plan-only", Values: map[string]float64{
			"queries": float64(total), "us_per_query": artifact.PlanCache.PlanOnlyUSPerQ,
		}},
	)

	blob, err := json.MarshalIndent(&artifact, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile("BENCH_planner.json", append(blob, '\n'), 0o644); err != nil {
		return nil, err
	}
	return []*Table{order, cache}, nil
}

// timePlanAndRun builds the plan, opens a fresh run and drains it at a
// pinned snapshot version, returning wall-clock and row count. Planning
// time is included: the comparison is end-to-end latency as a caller
// sees it. The snapshot keeps the timed run on one committed version —
// the measurement cannot mix commits even if the catalog is mutated
// while the benchmark runs.
func timePlanAndRun(cat *relation.Catalog, plan func(asOf int64) (relation.Operator, error)) (time.Duration, int, error) {
	snap := cat.Snapshot()
	defer snap.Release()
	start := time.Now()
	op, err := plan(snap.Version())
	if err != nil {
		return 0, 0, err
	}
	rows, err := relation.RunAt(op, snap.Version())
	if err != nil {
		return 0, 0, err
	}
	return time.Since(start), len(rows), nil
}

// starCatalog builds the benchmark star schema with n fact rows.
func starCatalog(n int, seed int64) (*relation.Catalog, error) {
	rng := rand.New(rand.NewSource(seed))
	cat := relation.NewCatalog()
	dimRows := n / 10
	if dimRows < 1 {
		dimRows = 1
	}

	fact, err := cat.CreateTable("fact", relation.NewSchema(
		relation.Column{Name: "id", Type: relation.TypeInt},
		relation.Column{Name: "d1", Type: relation.TypeInt},
		relation.Column{Name: "d2", Type: relation.TypeInt},
		relation.Column{Name: "amount", Type: relation.TypeFloat},
	))
	if err != nil {
		return nil, err
	}
	// DDL first (CreateTable takes the writer lock a Txn would hold),
	// then one transaction loads the whole star: a single commit instead
	// of a version bump per row.
	dims := make([]*relation.Table, 0, 2)
	for _, name := range []string{"dim1", "dim2"} {
		dim, err := cat.CreateTable(name, relation.NewSchema(
			relation.Column{Name: "k", Type: relation.TypeInt},
			relation.Column{Name: "attr", Type: relation.TypeInt},
		))
		if err != nil {
			return nil, err
		}
		dims = append(dims, dim)
	}
	x := cat.Begin()
	for i := 0; i < n; i++ {
		_, err := x.Insert(fact, []relation.Value{
			relation.Int(int64(i)),
			relation.Int(int64(rng.Intn(dimRows))),
			relation.Int(int64(rng.Intn(dimRows))),
			relation.Float(rng.Float64() * 1000),
		}, 1, nil)
		if err != nil {
			x.Rollback()
			return nil, err
		}
	}
	for _, dim := range dims {
		for i := 0; i < dimRows; i++ {
			_, err := x.Insert(dim, []relation.Value{
				relation.Int(int64(i)),
				relation.Int(int64(rng.Intn(100))),
			}, 1, nil)
			if err != nil {
				x.Rollback()
				return nil, err
			}
		}
	}
	if _, err := x.Commit(); err != nil {
		return nil, err
	}
	return cat, nil
}
