package bench

import (
	"fmt"
	"runtime"

	"pcqe/internal/strategy"
	"pcqe/internal/workload"
)

// FigParallel is the parallel D&C scaling study: (1) speedup versus
// worker-pool width at a fixed data size, and (2) response time versus
// data size (toward N = 1M in -full mode) at the configured width. The
// worker pool dispatches whole γ-groups, so the achievable speedup is
// bounded by the group-size distribution (and, of course, by the number
// of physical cores — on a single-core host every width must produce
// the same cost and must not regress wall-clock).
func FigParallel(opt Options) ([]*Table, error) {
	speedT, err := figParallelWorkers(opt)
	if err != nil {
		return nil, err
	}
	sizeT, err := figParallelSizes(opt)
	if err != nil {
		return nil, err
	}
	return []*Table{speedT, sizeT}, nil
}

// dncWorkers is the scaling study's solver configuration: γ=1 merges
// aggressively but MaxGroupResults caps group size so the task queue
// holds many comparable groups — the shape the worker pool targets.
func dncWorkers(w int) *strategy.DivideAndConquer {
	return &strategy.DivideAndConquer{Gamma: 1, Tau: 8, MaxGroupResults: 64, Workers: w}
}

func parallelParams(n int, seed int64) workload.Params {
	// Constant tuples-per-result keeps every group inside the compiled
	// kernels' shared-variable limit as N grows toward 1M.
	return workload.Params{
		DataSize: n, TuplesPerResult: 5, Delta: 0.1, Theta: 0.5, Beta: 0.6, Seed: seed,
	}
}

// figParallelWorkers fixes the data size and sweeps the pool width.
func figParallelWorkers(opt Options) (*Table, error) {
	n := 20000
	if opt.Full {
		n = 100000
	}
	t := &Table{
		Title:   fmt.Sprintf("Parallel scaling: D&C speedup vs workers (data size %s, GOMAXPROCS=%d)", sizeLabel(n), runtime.GOMAXPROCS(0)),
		XLabel:  "workers",
		Columns: []string{"time_s", "speedup", "cost_delta"},
		Notes:   "bit-identical plans at every width (cost_delta must be exactly 0); speedup tracks min(workers, cores) until the largest group dominates",
	}
	var base float64
	var baseCost float64
	for _, w := range []int{1, 2, 4, 8} {
		in, err := workload.Generate(parallelParams(n, opt.Seed))
		if err != nil {
			return nil, err
		}
		d, plan, err := timeSolve(dncWorkers(w), in)
		if err != nil {
			return nil, err
		}
		if w == 1 {
			base = d.Seconds()
			baseCost = plan.Cost
		}
		t.Rows = append(t.Rows, RowData{X: fmt.Sprintf("%d", w), Values: map[string]float64{
			"time_s":     d.Seconds(),
			"speedup":    base / d.Seconds(),
			"cost_delta": plan.Cost - baseCost,
		}})
	}
	return t, nil
}

// figParallelSizes fixes the pool width and grows the data size.
func figParallelSizes(opt Options) (*Table, error) {
	workers := opt.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sizes := []int{10000, 20000}
	if opt.Full {
		sizes = []int{10000, 50000, 100000, 250000, 500000, 1000000}
	}
	t := &Table{
		Title:   fmt.Sprintf("Parallel scaling: D&C response time vs data size (%d workers)", workers),
		XLabel:  "data size",
		Columns: []string{"time_s", "cost", "tuples_per_s"},
		Notes:   "near-linear time in N at constant tuples/result; the batched lineage kernels keep per-group constants flat toward N=1M",
	}
	for _, n := range sizes {
		in, err := workload.Generate(parallelParams(n, opt.Seed))
		if err != nil {
			return nil, err
		}
		d, plan, err := timeSolve(dncWorkers(workers), in)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, RowData{X: sizeLabel(n), Values: map[string]float64{
			"time_s":       d.Seconds(),
			"cost":         plan.Cost,
			"tuples_per_s": float64(n) / d.Seconds(),
		}})
	}
	return t, nil
}
