package bench

import (
	"fmt"
	"time"

	"pcqe/internal/core"
	"pcqe/internal/policy"
	"pcqe/internal/workload"
)

// FrameworkOverhead is an extension experiment (not a paper figure): it
// measures the full PCQE pipeline — SQL planning + execution, lineage
// probability computation, policy filtering, and improvement planning —
// over end-to-end databases of growing size, answering "what does
// confidence-policy compliance cost on top of plain query processing?".
func FrameworkOverhead(opt Options) (*Table, error) {
	sizes := []int{100, 500, 1000}
	if opt.Full {
		sizes = []int{100, 500, 1000, 5000}
	}
	t := &Table{
		Title:   "Extension: end-to-end PCQE pipeline cost (suppliers × 10 orders)",
		XLabel:  "suppliers",
		Columns: []string{"query_s", "evaluate_s", "plan_s", "withheld", "plan_cost"},
		Notes:   "policy evaluation adds little over the raw query; improvement planning dominates when triggered",
	}
	for _, n := range sizes {
		cat, queries, err := workload.GenerateDB(workload.DBParams{
			Suppliers: n, OrdersPerSupplier: 10, Regions: 5, Seed: opt.Seed,
		})
		if err != nil {
			return nil, err
		}
		rbac := policy.NewRBAC()
		rbac.AddRole("analyst")
		if err := rbac.AssignUser("u", "analyst"); err != nil {
			return nil, err
		}
		purposes := policy.NewPurposeTree()
		if err := purposes.Add("reporting", ""); err != nil {
			return nil, err
		}
		store := policy.NewStore(rbac, purposes)
		if err := store.Add(policy.ConfidencePolicy{Role: "analyst", Purpose: "reporting", Beta: 0.12}); err != nil {
			return nil, err
		}
		engine := core.NewEngine(cat, store, nil)
		q := queries[2] // the join query: AND lineage, most interesting

		// Raw query time (no policy).
		start := time.Now()
		resp0, err := engine.Evaluate(core.Request{User: "u", Query: q, Purpose: "unmatched-purpose"})
		if err != nil {
			return nil, err
		}
		queryDur := time.Since(start)
		_ = resp0

		// Policy evaluation without planning.
		start = time.Now()
		resp1, err := engine.Evaluate(core.Request{User: "u", Query: q, Purpose: "reporting"})
		if err != nil {
			return nil, err
		}
		evalDur := time.Since(start)

		// Policy evaluation with improvement planning (θ = 30%).
		start = time.Now()
		resp2, err := engine.Evaluate(core.Request{User: "u", Query: q, Purpose: "reporting", MinFraction: 0.3})
		if err != nil {
			return nil, err
		}
		planDur := time.Since(start) - evalDur
		if planDur < 0 {
			planDur = 0
		}
		vals := map[string]float64{
			"query_s":    queryDur.Seconds(),
			"evaluate_s": evalDur.Seconds(),
			"plan_s":     planDur.Seconds(),
			"withheld":   float64(len(resp1.Withheld)),
		}
		if resp2.Proposal != nil {
			vals["plan_cost"] = resp2.Proposal.Cost()
		}
		t.Rows = append(t.Rows, RowData{X: fmt.Sprintf("%d", n), Values: vals})
	}
	return t, nil
}
