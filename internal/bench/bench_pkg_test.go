package bench

import (
	"strings"
	"testing"
)

func TestTableFormat(t *testing.T) {
	tab := &Table{
		Title:   "t",
		XLabel:  "x",
		Columns: []string{"a", "b"},
		Rows: []RowData{
			{X: "r1", Values: map[string]float64{"a": 1.5}},
		},
		Notes: "note",
	}
	s := tab.Format()
	for _, want := range []string{"== t ==", "x", "a", "b", "r1", "1.5", "-", "shape: note"} {
		if !strings.Contains(s, want) {
			t.Errorf("Format missing %q:\n%s", want, s)
		}
	}
}

func TestTable4(t *testing.T) {
	tab := Table4()
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[0].Values["default"] != 10000 {
		t.Errorf("data size default = %v", tab.Rows[0].Values["default"])
	}
}

func TestFig11aShape(t *testing.T) {
	tab, err := Fig11a(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]RowData{}
	for _, r := range tab.Rows {
		byName[r.X] = r
	}
	naive, ok1 := byName["Naive"]
	all, ok2 := byName["All"]
	if !ok1 || !ok2 {
		t.Fatalf("missing rows: %v", tab.Rows)
	}
	// The paper's headline: All explores far less than Naive.
	if all.Values["nodes"] >= naive.Values["nodes"] {
		t.Errorf("All nodes (%v) should be below Naive nodes (%v)",
			all.Values["nodes"], naive.Values["nodes"])
	}
	// Every variant returns the same optimal cost.
	for name, r := range byName {
		if r.Values["cost"] != naive.Values["cost"] {
			t.Errorf("%s cost %v differs from Naive %v (pruning must stay exact)",
				name, r.Values["cost"], naive.Values["cost"])
		}
	}
}

func TestFig11dBoundHelps(t *testing.T) {
	a, err := Fig11a(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	d, err := Fig11d(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	nodes := func(tab *Table, name string) float64 {
		for _, r := range tab.Rows {
			if r.X == name {
				return r.Values["nodes"]
			}
		}
		return -1
	}
	// The greedy-seeded bound must not increase the explored nodes for
	// the naive variant (it can only prune more).
	if nodes(d, "Naive") > nodes(a, "Naive") {
		t.Errorf("greedy bound made Naive worse: %v > %v", nodes(d, "Naive"), nodes(a, "Naive"))
	}
}

func TestFig11beShape(t *testing.T) {
	opt := DefaultOptions()
	timeT, costT, err := Fig11be(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(timeT.Rows) != len(costT.Rows) || len(timeT.Rows) == 0 {
		t.Fatalf("rows: %d vs %d", len(timeT.Rows), len(costT.Rows))
	}
	for _, r := range costT.Rows {
		if r.Values["two-phase"] > r.Values["one-phase"]+1e-9 {
			t.Errorf("size %s: two-phase cost %v above one-phase %v",
				r.X, r.Values["two-phase"], r.Values["one-phase"])
		}
		if r.Values["reduction_%"] < 0 {
			t.Errorf("size %s: negative reduction", r.X)
		}
	}
}

func TestFig11cfShape(t *testing.T) {
	opt := DefaultOptions()
	timeT, costT, err := Fig11cf(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(timeT.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Tiny size: heuristic present and optimal (not above greedy/dnc).
	first := costT.Rows[0]
	h, ok := first.Values["heuristic"]
	if !ok {
		t.Fatal("heuristic missing at size 10")
	}
	for _, col := range []string{"greedy", "dnc"} {
		if v, ok := first.Values[col]; ok && h > v+1e-9 {
			t.Errorf("heuristic cost %v above %s %v at size 10", h, col, v)
		}
	}
	// Large sizes: heuristic absent.
	last := timeT.Rows[len(timeT.Rows)-1]
	if _, ok := last.Values["heuristic_s"]; ok {
		t.Error("heuristic should not run at the largest size")
	}
	if _, ok := last.Values["dnc_s"]; !ok {
		t.Error("dnc must run at every size")
	}
}

func TestRunDispatcher(t *testing.T) {
	opt := DefaultOptions()
	for _, name := range []string{"table4", "11a"} {
		tabs, err := Run(name, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tabs) == 0 {
			t.Fatalf("%s: no tables", name)
		}
	}
	if _, err := Run("nope", opt); err == nil {
		t.Fatal("unknown experiment should fail")
	}
	if len(Names()) == 0 {
		t.Fatal("Names empty")
	}
}

func TestAblationGainIncremental(t *testing.T) {
	opt := Options{Seed: 1}
	tab, err := AblationGainIncremental(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		if r.Values["cost_delta"] != 0 {
			t.Errorf("size %s: plans diverge (Δcost=%v)", r.X, r.Values["cost_delta"])
		}
	}
}

func TestAblationShannon(t *testing.T) {
	tab, err := AblationShannon(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// No sharing: zero error. Sharing: growing error.
	if tab.Rows[0].Values["max_abs_error"] > 1e-12 {
		t.Errorf("no-sharing error = %v", tab.Rows[0].Values["max_abs_error"])
	}
	if tab.Rows[len(tab.Rows)-1].Values["max_abs_error"] <= 0 {
		t.Errorf("shared-vars approximation should be biased")
	}
}

func TestAblationGammaAndTau(t *testing.T) {
	if _, err := AblationGamma(Options{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := AblationTau(Options{Seed: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestAblationOrdering(t *testing.T) {
	tab, err := AblationOrdering(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestFrameworkOverheadShape(t *testing.T) {
	tab, err := FrameworkOverhead(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range tab.Rows {
		// The policy check itself must not dwarf the raw query: the
		// evaluate pass includes the query, so it is within a small
		// factor of it.
		if r.Values["evaluate_s"] > 20*r.Values["query_s"]+0.05 {
			t.Errorf("size %s: evaluate %.4fs vs query %.4fs — policy overhead out of band",
				r.X, r.Values["evaluate_s"], r.Values["query_s"])
		}
		if r.Values["withheld"] <= 0 {
			t.Errorf("size %s: expected withheld rows under β=0.12", r.X)
		}
	}
}
