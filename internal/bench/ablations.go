package bench

import (
	"fmt"
	"time"

	"pcqe/internal/lineage"
	"pcqe/internal/strategy"
	"pcqe/internal/workload"
)

// Ablations runs the design-choice studies DESIGN.md lists: incremental
// vs full-rescan greedy gains, the D&C γ threshold, exact Shannon vs
// independence-approximate probability, the H1 ordering direction, and
// the D&C τ cutoff.
func Ablations(opt Options) ([]*Table, error) {
	var out []*Table
	for _, f := range []func(Options) (*Table, error){
		AblationCompiled,
		AblationGainIncremental,
		AblationGamma,
		AblationShannon,
		AblationOrdering,
		AblationTau,
		AblationParallel,
	} {
		t, err := f(opt)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// AblationCompiled compares the compiled lineage kernels against the
// legacy interface-typed tree walk on greedy phase 1 (the
// gain-evaluation hot loop; refinement skipped so the comparison
// isolates gain evaluation). Both paths solve the identical instance
// and produce bit-identical plans — cost_delta must be exactly zero.
func AblationCompiled(opt Options) (*Table, error) {
	sizes := []int{1000, 5000}
	if opt.Full {
		sizes = []int{1000, 5000, 10000, 20000}
	}
	t := &Table{
		Title:   "Ablation: compiled lineage kernels vs legacy tree walk (greedy phase 1)",
		XLabel:  "data size",
		Columns: []string{"treewalk_s", "compiled_s", "speedup", "cost_delta"},
		Notes:   "bit-identical plans; compiled flat programs replace per-node interface dispatch and map-keyed derivatives",
	}
	for _, n := range sizes {
		in, err := workload.Generate(workload.Params{
			DataSize: n, TuplesPerResult: 5, Delta: 0.1, Theta: 0.5, Beta: 0.6, Seed: opt.Seed,
		})
		if err != nil {
			return nil, err
		}
		d1, p1, err := timeSolve(&strategy.Greedy{SkipRefinement: true, TreeWalk: true}, in)
		if err != nil {
			return nil, err
		}
		d2, p2, err := timeSolve(&strategy.Greedy{SkipRefinement: true}, in)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, RowData{X: sizeLabel(n), Values: map[string]float64{
			"treewalk_s": d1.Seconds(),
			"compiled_s": d2.Seconds(),
			"speedup":    d1.Seconds() / d2.Seconds(),
			"cost_delta": p1.Cost - p2.Cost,
		}})
	}
	return t, nil
}

// AblationGainIncremental compares the paper-faithful full-rescan gain
// loop against the incremental variant that recomputes only dirty
// tuples. Both produce the same plan; the incremental one is faster.
func AblationGainIncremental(opt Options) (*Table, error) {
	sizes := []int{1000, 5000}
	if opt.Full {
		sizes = []int{1000, 5000, 10000, 20000}
	}
	t := &Table{
		Title:   "Ablation: greedy gain recomputation (full rescan vs incremental)",
		XLabel:  "data size",
		Columns: []string{"rescan_s", "incremental_s", "speedup", "cost_delta"},
		Notes:   "identical plans; incremental gain maintenance is strictly faster",
	}
	for _, n := range sizes {
		gen := func() (*strategy.Instance, error) {
			return workload.Generate(workload.Params{
				DataSize: n, TuplesPerResult: 5, Delta: 0.1, Theta: 0.5, Beta: 0.6, Seed: opt.Seed,
			})
		}
		in1, err := gen()
		if err != nil {
			return nil, err
		}
		d1, p1, err := timeSolve(&strategy.Greedy{}, in1)
		if err != nil {
			return nil, err
		}
		in2, err := gen()
		if err != nil {
			return nil, err
		}
		d2, p2, err := timeSolve(&strategy.Greedy{Incremental: true}, in2)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, RowData{X: sizeLabel(n), Values: map[string]float64{
			"rescan_s":      d1.Seconds(),
			"incremental_s": d2.Seconds(),
			"speedup":       d1.Seconds() / d2.Seconds(),
			"cost_delta":    p1.Cost - p2.Cost,
		}})
	}
	return t, nil
}

// AblationGamma sweeps the D&C partition threshold γ.
func AblationGamma(opt Options) (*Table, error) {
	n := 5000
	if opt.Full {
		n = 10000
	}
	t := &Table{
		Title:   fmt.Sprintf("Ablation: D&C partition threshold γ (data size %s)", sizeLabel(n)),
		XLabel:  "gamma",
		Columns: []string{"time_s", "cost", "groups"},
		Notes:   "small γ merges aggressively (fewer, larger groups); large γ approaches per-result solving",
	}
	for _, gamma := range []int{1, 2, 3, 5} {
		in, err := workload.Generate(workload.Params{
			DataSize: n, TuplesPerResult: 5, Delta: 0.1, Theta: 0.5, Beta: 0.6, Seed: opt.Seed,
		})
		if err != nil {
			return nil, err
		}
		groups := strategy.Partition(in, gamma, 0)
		d, plan, err := timeSolve(&strategy.DivideAndConquer{Gamma: gamma, Tau: 8}, in)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, RowData{X: fmt.Sprintf("%d", gamma), Values: map[string]float64{
			"time_s": d.Seconds(),
			"cost":   plan.Cost,
			"groups": float64(len(groups)),
		}})
	}
	return t, nil
}

// AblationShannon compares exact Shannon-expansion probability against
// the independence approximation on formulas with shared variables.
func AblationShannon(opt Options) (*Table, error) {
	t := &Table{
		Title:   "Ablation: exact Shannon expansion vs independence approximation",
		XLabel:  "shared vars",
		Columns: []string{"exact_us", "approx_us", "max_abs_error"},
		Notes:   "the approximation is faster but biased as sharing grows; the engine uses exact evaluation",
	}
	for _, shared := range []int{0, 2, 4, 8} {
		e, assign := sharedFormula(shared, 12)
		// Timing: many evaluations to get stable microsecond numbers.
		const reps = 2000
		start := time.Now()
		var exact float64
		for i := 0; i < reps; i++ {
			exact = lineage.Prob(e, assign)
		}
		exactDur := time.Since(start)
		start = time.Now()
		var approx float64
		for i := 0; i < reps; i++ {
			approx = lineage.ProbIndependent(e, assign)
		}
		approxDur := time.Since(start)
		errAbs := exact - approx
		if errAbs < 0 {
			errAbs = -errAbs
		}
		t.Rows = append(t.Rows, RowData{X: fmt.Sprintf("%d", shared), Values: map[string]float64{
			"exact_us":      float64(exactDur.Microseconds()) / reps,
			"approx_us":     float64(approxDur.Microseconds()) / reps,
			"max_abs_error": errAbs,
		}})
	}
	return t, nil
}

// sharedFormula builds an OR of AND-pairs in which `shared` variables
// appear in two clauses each.
func sharedFormula(shared, clauses int) (*lineage.Expr, lineage.Assignment) {
	assign := lineage.MapAssignment{}
	next := lineage.Var(1)
	fresh := func() *lineage.Expr {
		v := next
		next++
		assign[v] = 0.5
		return lineage.NewVar(v)
	}
	sharedVars := make([]*lineage.Expr, shared)
	for i := range sharedVars {
		sharedVars[i] = fresh()
	}
	var cl []*lineage.Expr
	for i := 0; i < clauses; i++ {
		a := fresh()
		b := fresh()
		if i < shared {
			a = sharedVars[i]
		}
		if i >= clauses-shared {
			b = sharedVars[i-(clauses-shared)]
		}
		cl = append(cl, lineage.And(a, b))
	}
	return lineage.Or(cl...), assign
}

// AblationOrdering compares the H1 descending-costβ variable order with
// ascending and instance order on the tiny heuristic workload.
func AblationOrdering(opt Options) (*Table, error) {
	t := &Table{
		Title:   "Ablation: heuristic variable ordering (search-order sensitivity)",
		XLabel:  "ordering",
		Columns: []string{"time_s", "nodes"},
		Notes:   "H1's descending-costβ order explores fewer nodes than instance order",
	}
	seeds := []int64{opt.Seed, opt.Seed + 1, opt.Seed + 2}
	type variant struct {
		name string
		h    *strategy.Heuristic
	}
	// Ascending order is approximated by disabling H1: the workload
	// generator emits tuples in random cost order, so "none" is the
	// unordered baseline and "H1" the paper's order.
	for _, v := range []variant{
		{"instance-order", &strategy.Heuristic{UseH2: true, UseH3: true, UseH4: true}},
		{"H1-desc-costβ", &strategy.Heuristic{UseH1: true, UseH2: true, UseH3: true, UseH4: true}},
	} {
		var total time.Duration
		nodes := 0
		runs := 0
		for _, seed := range seeds {
			in, err := tinyInstance(seed, opt.Full)
			if err != nil {
				return nil, err
			}
			d, plan, err := timeSolve(v.h, in)
			if err != nil {
				continue
			}
			total += d
			nodes += plan.Nodes
			runs++
		}
		if runs == 0 {
			continue
		}
		t.Rows = append(t.Rows, RowData{X: v.name, Values: map[string]float64{
			"time_s": total.Seconds() / float64(runs),
			"nodes":  float64(nodes) / float64(runs),
		}})
	}
	return t, nil
}

// AblationTau sweeps the D&C heuristic-refinement cutoff τ.
func AblationTau(opt Options) (*Table, error) {
	n := 1000
	t := &Table{
		Title:   fmt.Sprintf("Ablation: D&C heuristic cutoff τ (data size %s)", sizeLabel(n)),
		XLabel:  "tau",
		Columns: []string{"time_s", "cost"},
		Notes:   "larger τ runs exact search in more groups: more time, (weakly) lower cost",
	}
	for _, tau := range []int{0, 6, 10, 14} {
		in, err := workload.Generate(workload.Params{
			DataSize: n, TuplesPerResult: 5, Delta: 0.1, Theta: 0.5, Beta: 0.6, Seed: opt.Seed,
		})
		if err != nil {
			return nil, err
		}
		d, plan, err := timeSolve(&strategy.DivideAndConquer{Gamma: 1, Tau: tau}, in)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, RowData{X: fmt.Sprintf("%d", tau), Values: map[string]float64{
			"time_s": d.Seconds(),
			"cost":   plan.Cost,
		}})
	}
	return t, nil
}

// AblationParallel compares sequential vs parallel D&C group solving.
func AblationParallel(opt Options) (*Table, error) {
	sizes := []int{5000}
	if opt.Full {
		sizes = []int{5000, 10000, 50000}
	}
	t := &Table{
		Title:   "Ablation: D&C group solving (sequential vs parallel workers)",
		XLabel:  "data size",
		Columns: []string{"sequential_s", "parallel_s", "speedup", "cost_delta"},
		Notes:   "identical costs; wall-clock gains require multiple cores (GOMAXPROCS>1) — on a single-core host the parallel path must simply not regress",
	}
	for _, n := range sizes {
		gen := func() (*strategy.Instance, error) {
			return workload.Generate(workload.Params{
				DataSize: n, TuplesPerResult: 5, Delta: 0.1, Theta: 0.5, Beta: 0.6, Seed: opt.Seed,
			})
		}
		in1, err := gen()
		if err != nil {
			return nil, err
		}
		seq := &strategy.DivideAndConquer{Gamma: 1, Tau: 8, MaxGroupResults: 64}
		d1, p1, err := timeSolve(seq, in1)
		if err != nil {
			return nil, err
		}
		in2, err := gen()
		if err != nil {
			return nil, err
		}
		par := &strategy.DivideAndConquer{Gamma: 1, Tau: 8, MaxGroupResults: 64, Parallel: true}
		d2, p2, err := timeSolve(par, in2)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, RowData{X: sizeLabel(n), Values: map[string]float64{
			"sequential_s": d1.Seconds(),
			"parallel_s":   d2.Seconds(),
			"speedup":      d1.Seconds() / d2.Seconds(),
			"cost_delta":   p1.Cost - p2.Cost,
		}})
	}
	return t, nil
}
