// Package conf centralizes confidence (probability) arithmetic
// discipline for PCQE. The paper's policies compare confidences against
// thresholds (F ≥ β), solvers step confidences on a δ grid, and lineage
// evaluation produces them as long products of floats — so every
// comparison in the system must agree on one rounding tolerance, and
// every stored confidence must stay in [0,1]. Before this package the
// tolerance lived as scattered 1e-12 literals; the confrange analyzer
// (cmd/pcqelint) now rejects new inline epsilons and raw float equality
// on confidence values, pointing here instead.
package conf

import "math"

// Eps is the shared comparison tolerance. Lineage evaluation multiplies
// at most a few thousand factors, each introducing ≤ 1 ulp (~1e-16)
// of relative error, so 1e-12 dominates accumulated rounding while
// staying far below the coarsest meaningful confidence distinction
// (the paper's δ grid is 0.1; engines use δ ≥ 1e-3).
const Eps = 1e-12

// Clamp forces p into [0,1]. NaN clamps to 0: a confidence that is not
// a number carries no evidence.
func Clamp(p float64) float64 {
	if math.IsNaN(p) {
		return 0
	}
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// Valid reports whether p is a well-formed confidence: not NaN and
// within [0,1]. Unlike Clamp it rejects rather than repairs, for
// validation at system boundaries (CSV load, SetConfidence, requests).
func Valid(p float64) bool {
	return !math.IsNaN(p) && p >= 0 && p <= 1
}

// VerifyEps is the deliberately looser acceptance tolerance for
// re-verifying a plan by recomputation (Instance.Verify): the verifier
// may recompute probabilities along a different (but value-identical)
// evaluation path than the solver, and must never reject a plan the
// solver honestly satisfied within Eps.
const VerifyEps = 1e-9

// GELoose reports a ≥ b up to VerifyEps. Only verification paths
// should use it; planning decisions use GE.
func GELoose(a, b float64) bool { return a >= b-VerifyEps }

// Eq reports a ≈ b within Eps.
func Eq(a, b float64) bool { return math.Abs(a-b) <= Eps }

// Zero reports p ≈ 0 within Eps.
func Zero(p float64) bool { return math.Abs(p) <= Eps }

// One reports p ≈ 1 within Eps.
func One(p float64) bool { return math.Abs(p-1) <= Eps }

// GE reports a ≥ b up to Eps (a may fall short of b by at most Eps).
// This is the threshold test F ≥ β: a confidence that reaches the
// threshold modulo rounding counts as satisfying it.
func GE(a, b float64) bool { return a >= b-Eps }

// GT reports a > b beyond Eps (a must clear b by more than Eps).
// Used for "strictly raised" checks such as plan-increment detection.
func GT(a, b float64) bool { return a > b+Eps }

// LE reports a ≤ b up to Eps.
func LE(a, b float64) bool { return a <= b+Eps }

// LT reports a < b beyond Eps.
func LT(a, b float64) bool { return a < b-Eps }
