package conf

import (
	"math"
	"testing"
)

// The helper semantics are load-bearing: the whole repo migrated its
// inline 1e-12 literals onto these functions, so the tolerances are
// pinned bit-for-bit here. Loosening Eps silently changes which plans
// the solvers accept; tightening it breaks δ-grid equality.

func TestEpsValues(t *testing.T) {
	if Eps != 1e-12 {
		t.Fatalf("Eps = %g, the migrated comparisons assumed 1e-12", Eps)
	}
	if VerifyEps != 1e-9 {
		t.Fatalf("VerifyEps = %g, verification assumed the looser 1e-9", VerifyEps)
	}
}

func TestOrderedComparators(t *testing.T) {
	beta := 0.7
	cases := []struct {
		name           string
		a              float64
		ge, gt, le, lt bool
	}{
		// Within Eps of the threshold: GE and LE both hold, strict
		// comparisons both fail — exactly the old a >= b-1e-12 behavior.
		{"just below within Eps", beta - 1e-13, true, false, true, false},
		{"exactly at", beta, true, false, true, false},
		{"just above within Eps", beta + 1e-13, true, false, true, false},
		// Beyond Eps the comparators agree with plain <, >.
		{"below beyond Eps", beta - 1e-11, false, false, true, true},
		{"above beyond Eps", beta + 1e-11, true, true, false, false},
	}
	for _, c := range cases {
		if got := GE(c.a, beta); got != c.ge {
			t.Errorf("%s: GE = %v, want %v", c.name, got, c.ge)
		}
		if got := GT(c.a, beta); got != c.gt {
			t.Errorf("%s: GT = %v, want %v", c.name, got, c.gt)
		}
		if got := LE(c.a, beta); got != c.le {
			t.Errorf("%s: LE = %v, want %v", c.name, got, c.le)
		}
		if got := LT(c.a, beta); got != c.lt {
			t.Errorf("%s: LT = %v, want %v", c.name, got, c.lt)
		}
	}
}

func TestEqualityHelpers(t *testing.T) {
	if !Eq(0.3, 0.3+1e-13) || Eq(0.3, 0.3+1e-11) {
		t.Fatal("Eq tolerance is not Eps")
	}
	if !Zero(1e-13) || Zero(1e-11) {
		t.Fatal("Zero tolerance is not Eps")
	}
	if !One(1-1e-13) || One(1-1e-11) {
		t.Fatal("One tolerance is not Eps")
	}
}

func TestGELoose(t *testing.T) {
	beta := 0.7
	// A verification recomputation may fall short by almost VerifyEps...
	if !GELoose(beta-5e-10, beta) {
		t.Fatal("GELoose must absorb sub-VerifyEps recomputation drift")
	}
	// ...but not by more.
	if GELoose(beta-2e-9, beta) {
		t.Fatal("GELoose absorbed more than VerifyEps")
	}
	// Planning-side GE stays strict at Eps: the same drift fails it.
	if GE(beta-5e-10, beta) {
		t.Fatal("GE must not absorb VerifyEps-scale drift")
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{math.NaN(), 0},
		{-0.5, 0},
		{math.Inf(-1), 0},
		{0, 0},
		{0.42, 0.42},
		{1, 1},
		{1 + 1e-16, 1},
		{1.7, 1},
		{math.Inf(1), 1},
	}
	for _, c := range cases {
		if got := Clamp(c.in); got != c.want {
			t.Errorf("Clamp(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestValid(t *testing.T) {
	for _, ok := range []float64{0, 1, 0.5} {
		if !Valid(ok) {
			t.Errorf("Valid(%v) = false", ok)
		}
	}
	for _, bad := range []float64{math.NaN(), -1e-16, 1 + 1e-15, math.Inf(1), math.Inf(-1)} {
		if Valid(bad) {
			t.Errorf("Valid(%v) = true", bad)
		}
	}
}
