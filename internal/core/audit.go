package core

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"pcqe/internal/lineage"
	"pcqe/internal/obs"
)

// AuditEventKind classifies audit-log entries.
type AuditEventKind uint8

// Audit event kinds.
const (
	// AuditEvaluate records one policy-compliant query evaluation.
	AuditEvaluate AuditEventKind = iota
	// AuditPropose records that an improvement plan was offered.
	AuditPropose
	// AuditApply records that an improvement plan was applied.
	AuditApply
	// AuditDegrade records that improvement planning was cut short by a
	// deadline, a solver budget, or a recovered solver fault — the
	// response degraded to a partial proposal or none.
	AuditDegrade
)

// String returns the event kind's name.
func (k AuditEventKind) String() string {
	switch k {
	case AuditEvaluate:
		return "evaluate"
	case AuditPropose:
		return "propose"
	case AuditApply:
		return "apply"
	case AuditDegrade:
		return "degrade"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// AuditEvent is one entry in the engine's compliance journal. Confidence
// policies exist for governance; the journal answers "who saw what at
// which threshold, and who paid to see more".
type AuditEvent struct {
	Seq      int
	Time     time.Time
	Kind     AuditEventKind
	User     string
	Purpose  string
	Query    string
	Beta     float64
	Released int
	Withheld int
	// Cost and Increments are set for propose/apply events.
	Cost       float64
	Increments []Increment
	// Partial marks propose events whose plan is a best-effort incumbent
	// (budget exhaustion) and degrade events that still carry a proposal.
	Partial bool
	// Detail carries the degradation cause for degrade events.
	Detail string
}

// String renders the event as one journal line.
func (e AuditEvent) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d %s %s", e.Seq, e.Kind, e.User)
	if e.Purpose != "" {
		fmt.Fprintf(&b, " purpose=%s", e.Purpose)
	}
	switch e.Kind {
	case AuditEvaluate:
		fmt.Fprintf(&b, " β=%.4g released=%d withheld=%d", e.Beta, e.Released, e.Withheld)
	case AuditPropose, AuditApply:
		fmt.Fprintf(&b, " cost=%.4g tuples=%d", e.Cost, len(e.Increments))
		if e.Partial {
			b.WriteString(" partial")
		}
	case AuditDegrade:
		fmt.Fprintf(&b, " partial=%t cause=%q", e.Partial, e.Detail)
	}
	return b.String()
}

// AuditLog is a concurrency-safe append-only journal. The zero value is
// ready to use. Clock is overridable for deterministic tests.
type AuditLog struct {
	mu     sync.Mutex
	events []AuditEvent
	Clock  func() time.Time
}

func (l *AuditLog) record(e AuditEvent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e.Seq = len(l.events) + 1
	if l.Clock != nil {
		e.Time = l.Clock()
	} else {
		e.Time = time.Now()
	}
	l.events = append(l.events, e)
}

// Events returns a copy of the journal.
func (l *AuditLog) Events() []AuditEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]AuditEvent{}, l.events...)
}

// Len returns the number of recorded events.
func (l *AuditLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// ByKind returns the recorded events of one kind, in order.
func (l *AuditLog) ByKind(kind AuditEventKind) []AuditEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []AuditEvent
	for _, e := range l.events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// TotalImprovementSpend sums the cost of all applied improvement plans —
// the running bill for data-quality work.
func (l *AuditLog) TotalImprovementSpend() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	total := 0.0
	for _, e := range l.events {
		if e.Kind == AuditApply {
			total += e.Cost
		}
	}
	return total
}

// ImprovedTuples returns the distinct base tuples whose confidence was
// raised by applied plans, with the cumulative spend per tuple.
func (l *AuditLog) ImprovedTuples() map[lineage.Var]float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := map[lineage.Var]float64{}
	for _, e := range l.events {
		if e.Kind != AuditApply {
			continue
		}
		for _, inc := range e.Increments {
			out[inc.Var] += inc.Cost
		}
	}
	return out
}

// SetAudit attaches a journal to the engine; nil detaches. Evaluate,
// proposal creation and Apply record events while attached.
func (e *Engine) SetAudit(log *AuditLog) { e.audit = log }

// Audit returns the attached journal (nil when none).
func (e *Engine) Audit() *AuditLog { return e.audit }

// SetMetrics attaches a metrics registry; nil detaches. While
// attached, every evaluation, degradation, proposal, apply and audit
// event updates the registry's counters and histograms (see DESIGN.md
// §8 for the metric names).
func (e *Engine) SetMetrics(m *obs.Metrics) {
	e.metrics = m
	e.plans.SetMetrics(m)
}

// Metrics returns the attached registry (nil when none).
func (e *Engine) Metrics() *obs.Metrics { return e.metrics }

// SetTracer attaches a span tracer; nil detaches. Response.Timings is
// populated either way; a tracer additionally retains the request
// span trees (e.g. obs.NewRingTracer keeps the most recent ones).
func (e *Engine) SetTracer(t obs.Tracer) { e.tracer = t }

// Tracer returns the attached tracer (nil when none).
func (e *Engine) Tracer() obs.Tracer { return e.tracer }

// recordAudit journals ev (when a journal is attached) and mirrors the
// event into the per-kind audit counters of the metrics registry, so
// Metrics.Snapshot() and AuditLog.ByKind agree event for event.
func (e *Engine) recordAudit(ev AuditEvent) {
	if e.audit != nil {
		e.audit.record(ev)
	}
	e.metrics.Counter("engine.audit." + ev.Kind.String()).Inc()
}
