package core

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"pcqe/internal/lineage"
	"pcqe/internal/obs"
)

// AuditEventKind classifies audit-log entries.
type AuditEventKind uint8

// Audit event kinds.
const (
	// AuditEvaluate records one policy-compliant query evaluation.
	AuditEvaluate AuditEventKind = iota
	// AuditPropose records that an improvement plan was offered.
	AuditPropose
	// AuditApply records that an improvement plan was applied.
	AuditApply
	// AuditDegrade records that improvement planning was cut short by a
	// deadline, a solver budget, or a recovered solver fault — the
	// response degraded to a partial proposal or none.
	AuditDegrade
	// AuditRollback records that an accepted improvement plan failed to
	// apply and its transaction was rolled back: the database is
	// unchanged, nothing was billed.
	AuditRollback
)

// String returns the event kind's name.
func (k AuditEventKind) String() string {
	switch k {
	case AuditEvaluate:
		return "evaluate"
	case AuditPropose:
		return "propose"
	case AuditApply:
		return "apply"
	case AuditDegrade:
		return "degrade"
	case AuditRollback:
		return "rollback"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MarshalJSON renders the kind as its string name. The numeric
// encoding a bare uint8 would produce is lossy for journal consumers:
// a "3" in a flushed journal file is meaningless without this
// package's iota order, which is not a stable wire contract — the
// names are.
func (k AuditEventKind) MarshalJSON() ([]byte, error) {
	if k > AuditRollback {
		return nil, fmt.Errorf("core: cannot marshal unknown audit event kind %d", uint8(k))
	}
	return json.Marshal(k.String())
}

// UnmarshalJSON parses the string name form produced by MarshalJSON.
func (k *AuditEventKind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("core: audit event kind: %w", err)
	}
	for c := AuditEvaluate; c <= AuditRollback; c++ {
		if c.String() == s {
			*k = c
			return nil
		}
	}
	return fmt.Errorf("core: unknown audit event kind %q", s)
}

// AuditEvent is one entry in the engine's compliance journal. Confidence
// policies exist for governance; the journal answers "who saw what at
// which threshold, and who paid to see more".
type AuditEvent struct {
	Seq      int
	Time     time.Time
	Kind     AuditEventKind
	User     string
	Purpose  string
	Query    string
	Beta     float64
	Released int
	Withheld int
	// Cost and Increments are set for propose/apply events.
	Cost       float64
	Increments []Increment
	// Partial marks propose events whose plan is a best-effort incumbent
	// (budget exhaustion) and degrade events that still carry a proposal.
	Partial bool
	// Detail carries the degradation cause for degrade events.
	Detail string
	// ReadVersion is the committed catalog version the event's evaluation
	// (or the proposal behind an apply) read. CommitVersion is the
	// version an apply's transaction produced; the two bracket exactly
	// what the plan changed, and replaying the journal's apply events in
	// CommitVersion order reconstructs every improved confidence (see
	// ReplayConfidences). Zero means "not recorded" (pre-MVCC events,
	// rolled-back applies).
	ReadVersion   int64
	CommitVersion int64
}

// String renders the event as one journal line.
func (e AuditEvent) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d %s %s", e.Seq, e.Kind, e.User)
	if e.Purpose != "" {
		fmt.Fprintf(&b, " purpose=%s", e.Purpose)
	}
	switch e.Kind {
	case AuditEvaluate:
		fmt.Fprintf(&b, " β=%.4g released=%d withheld=%d", e.Beta, e.Released, e.Withheld)
	case AuditPropose, AuditApply:
		fmt.Fprintf(&b, " cost=%.4g tuples=%d", e.Cost, len(e.Increments))
		if e.Partial {
			b.WriteString(" partial")
		}
	case AuditDegrade:
		fmt.Fprintf(&b, " partial=%t cause=%q", e.Partial, e.Detail)
	case AuditRollback:
		fmt.Fprintf(&b, " cause=%q", e.Detail)
	}
	if e.ReadVersion > 0 {
		fmt.Fprintf(&b, " read_version=%d", e.ReadVersion)
	}
	if e.CommitVersion > 0 {
		fmt.Fprintf(&b, " commit_version=%d", e.CommitVersion)
	}
	return b.String()
}

// AuditLog is a concurrency-safe append-only journal. The zero value is
// ready to use. Clock is overridable for deterministic tests.
type AuditLog struct {
	mu     sync.Mutex
	events []AuditEvent
	Clock  func() time.Time
}

func (l *AuditLog) record(e AuditEvent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e.Seq = len(l.events) + 1
	if l.Clock != nil {
		e.Time = l.Clock()
	} else {
		e.Time = time.Now()
	}
	l.events = append(l.events, e)
}

// Events returns a copy of the journal.
func (l *AuditLog) Events() []AuditEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]AuditEvent{}, l.events...)
}

// Len returns the number of recorded events.
func (l *AuditLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// ByKind returns the recorded events of one kind, in order.
func (l *AuditLog) ByKind(kind AuditEventKind) []AuditEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []AuditEvent
	for _, e := range l.events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// TotalImprovementSpend sums the cost of all applied improvement plans —
// the running bill for data-quality work.
func (l *AuditLog) TotalImprovementSpend() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	total := 0.0
	for _, e := range l.events {
		if e.Kind == AuditApply {
			total += e.Cost
		}
	}
	return total
}

// ReplayConfidences folds the journal's apply events with
// CommitVersion in (0, upTo] — in commit order — into the confidence
// each improved tuple reached by version upTo. Together with
// Catalog.SnapshotAt this makes the journal verifiable: for every
// improved variable, the replayed confidence must equal the snapshot's
// at the same version (tested by the audit suite).
func (l *AuditLog) ReplayConfidences(upTo int64) map[lineage.Var]float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	type applied struct {
		v    int64
		incs []Increment
	}
	var applies []applied
	for _, e := range l.events {
		if e.Kind != AuditApply || e.CommitVersion <= 0 || e.CommitVersion > upTo {
			continue
		}
		applies = append(applies, applied{v: e.CommitVersion, incs: e.Increments})
	}
	sort.Slice(applies, func(i, j int) bool { return applies[i].v < applies[j].v })
	out := map[lineage.Var]float64{}
	for _, a := range applies {
		for _, inc := range a.incs {
			out[inc.Var] = inc.To
		}
	}
	return out
}

// ImprovedTuples returns the distinct base tuples whose confidence was
// raised by applied plans, with the cumulative spend per tuple.
func (l *AuditLog) ImprovedTuples() map[lineage.Var]float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := map[lineage.Var]float64{}
	for _, e := range l.events {
		if e.Kind != AuditApply {
			continue
		}
		for _, inc := range e.Increments {
			out[inc.Var] += inc.Cost
		}
	}
	return out
}

// SetAudit attaches a journal to the engine; nil detaches. Evaluate,
// proposal creation and Apply record events while attached.
func (e *Engine) SetAudit(log *AuditLog) { e.audit = log }

// Audit returns the attached journal (nil when none).
func (e *Engine) Audit() *AuditLog { return e.audit }

// SetMetrics attaches a metrics registry; nil detaches. While
// attached, every evaluation, degradation, proposal, apply and audit
// event updates the registry's counters and histograms (see DESIGN.md
// §8 for the metric names), and the catalog's transaction/snapshot
// counters publish to the same registry.
func (e *Engine) SetMetrics(m *obs.Metrics) {
	e.metrics = m
	e.plans.SetMetrics(m)
	e.catalog.SetMetrics(m)
}

// Metrics returns the attached registry (nil when none).
func (e *Engine) Metrics() *obs.Metrics { return e.metrics }

// SetTracer attaches a span tracer; nil detaches. Response.Timings is
// populated either way; a tracer additionally retains the request
// span trees (e.g. obs.NewRingTracer keeps the most recent ones).
func (e *Engine) SetTracer(t obs.Tracer) { e.tracer = t }

// Tracer returns the attached tracer (nil when none).
func (e *Engine) Tracer() obs.Tracer { return e.tracer }

// recordAudit journals ev (when a journal is attached) and mirrors the
// event into the per-kind audit counters of the metrics registry, so
// Metrics.Snapshot() and AuditLog.ByKind agree event for event.
func (e *Engine) recordAudit(ev AuditEvent) {
	if e.audit != nil {
		e.audit.record(ev)
	}
	e.metrics.Counter("engine.audit." + ev.Kind.String()).Inc()
}
