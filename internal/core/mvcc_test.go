package core

import (
	"strings"
	"testing"

	"pcqe/internal/fault"
	"pcqe/internal/lineage"
	"pcqe/internal/policy"
	"pcqe/internal/relation"
)

// confidenceImage captures every base-tuple confidence in the venture
// database, for bit-identical before/after comparison.
func confidenceImage(t *testing.T, cat *relation.Catalog) map[lineage.Var]float64 {
	t.Helper()
	img := map[lineage.Var]float64{}
	for _, name := range cat.TableNames() {
		tab, err := cat.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range tab.Rows() {
			img[b.Var] = b.Confidence
		}
	}
	return img
}

// TestMVCCApplyFaultRollsBackAtomically injects a fault into the middle
// of improvement-plan application: the transaction must roll back,
// every confidence must stay bit-identical to the pre-transaction
// state, and the failure must be journaled as a rollback event.
func TestMVCCApplyFaultRollsBackAtomically(t *testing.T) {
	e := newVentureEngine(t, nil)
	log := &AuditLog{}
	e.SetAudit(log)
	cat := e.Catalog()

	req := Request{User: "mark", Query: ventureQuery, Purpose: "investment", MinFraction: 1.0}
	resp, err := e.Evaluate(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Proposal == nil {
		t.Fatal("expected a proposal")
	}
	if resp.Version != cat.Version() {
		t.Fatalf("response version = %d, want %d", resp.Version, cat.Version())
	}
	if resp.Proposal.ReadVersion() != resp.Version {
		t.Fatalf("proposal read version = %d, want %d", resp.Proposal.ReadVersion(), resp.Version)
	}

	before := confidenceImage(t, cat)
	beforeVersion := cat.Version()

	defer fault.Reset()
	fault.Register("core.apply.increment", func() { panic("disk full") })
	fault.Enable()
	err = e.Apply(resp.Proposal)
	fault.Disable()
	if err == nil || !strings.Contains(err.Error(), "apply fault") {
		t.Fatalf("Apply error = %v, want apply fault", err)
	}

	// All-or-nothing: nothing committed, nothing changed, bit-identical.
	if v := cat.Version(); v != beforeVersion {
		t.Fatalf("version advanced to %d on a failed apply, want %d", v, beforeVersion)
	}
	after := confidenceImage(t, cat)
	if len(after) != len(before) {
		t.Fatalf("tuple count changed: %d → %d", len(before), len(after))
	}
	for v, p := range before {
		if after[v] != p {
			t.Fatalf("tuple %d confidence changed across failed apply: %v → %v", int(v), p, after[v])
		}
	}
	// The rollback is journaled with the proposal's read version and no
	// commit version.
	rollbacks := log.ByKind(AuditRollback)
	if len(rollbacks) != 1 {
		t.Fatalf("rollback events = %d, want 1", len(rollbacks))
	}
	rb := rollbacks[0]
	if rb.ReadVersion != resp.Proposal.ReadVersion() || rb.CommitVersion != 0 {
		t.Fatalf("rollback versions = (%d,%d), want (%d,0)", rb.ReadVersion, rb.CommitVersion, resp.Proposal.ReadVersion())
	}
	if !strings.Contains(rb.Detail, "disk full") {
		t.Fatalf("rollback detail = %q", rb.Detail)
	}
	if !strings.Contains(rb.String(), "rollback") || !strings.Contains(rb.String(), "cause=") {
		t.Fatalf("rollback rendering = %q", rb.String())
	}
	if len(log.ByKind(AuditApply)) != 0 {
		t.Fatal("failed apply must not journal an apply event")
	}

	// With the fault cleared the same proposal applies and the query
	// releases its row.
	if err := e.Apply(resp.Proposal); err != nil {
		t.Fatal(err)
	}
	resp2, err := e.Evaluate(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp2.Released) != 1 {
		t.Fatalf("after recovery: released = %d, want 1", len(resp2.Released))
	}
}

// TestMVCCAuditVersionsBracketApplies drives two evaluate→apply cycles
// and checks the journal's version bookkeeping: every apply event
// brackets exactly one committed version (commit = read + 1, gap-free
// against Catalog.Version()), and the confidences it claims are exactly
// what a time-travel snapshot at the commit version shows.
func TestMVCCAuditVersionsBracketApplies(t *testing.T) {
	e := newVentureEngine(t, nil)
	log := &AuditLog{}
	e.SetAudit(log)
	cat := e.Catalog()

	req := Request{User: "mark", Query: ventureQuery, Purpose: "investment", MinFraction: 1.0}
	resp, err := e.Evaluate(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Apply(resp.Proposal); err != nil {
		t.Fatal(err)
	}
	// Tighten the policy and improve again, producing a second apply.
	if err := e.Policies().Add(policy.ConfidencePolicy{Role: "manager", Purpose: "investment", Beta: 0.3}); err != nil {
		t.Fatal(err)
	}
	resp, err = e.Evaluate(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Proposal == nil {
		t.Fatal("tightened policy should need improvement")
	}
	if err := e.Apply(resp.Proposal); err != nil {
		t.Fatal(err)
	}

	evals := log.ByKind(AuditEvaluate)
	if len(evals) != 2 {
		t.Fatalf("evaluate events = %d, want 2", len(evals))
	}
	for i, ev := range evals {
		if ev.ReadVersion <= 0 {
			t.Fatalf("evaluate %d has no read version", i)
		}
		if !strings.Contains(ev.String(), "read_version=") {
			t.Fatalf("evaluate rendering lacks read version: %q", ev.String())
		}
	}

	applies := log.ByKind(AuditApply)
	if len(applies) != 2 {
		t.Fatalf("apply events = %d, want 2", len(applies))
	}
	var lastCommit int64
	for i, ap := range applies {
		if ap.CommitVersion != ap.ReadVersion+1 {
			t.Fatalf("apply %d: commit %d, read %d — transaction must produce exactly one version",
				i, ap.CommitVersion, ap.ReadVersion)
		}
		if ap.CommitVersion <= lastCommit {
			t.Fatalf("apply %d: commit versions not increasing (%d after %d)", i, ap.CommitVersion, lastCommit)
		}
		lastCommit = ap.CommitVersion
		if ap.CommitVersion > cat.Version() {
			t.Fatalf("apply %d: commit version %d beyond catalog version %d", i, ap.CommitVersion, cat.Version())
		}
		// The journal is verifiable: a snapshot at the commit version shows
		// each increment at exactly its recorded target, and one version
		// earlier at exactly its recorded start.
		at, err := cat.SnapshotAt(ap.CommitVersion)
		if err != nil {
			t.Fatal(err)
		}
		beforeAt, err := cat.SnapshotAt(ap.CommitVersion - 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, inc := range ap.Increments {
			if got := at.ProbOf(inc.Var); got != inc.To {
				t.Fatalf("apply %d tuple %d: snapshot@%d = %v, journal says %v",
					i, int(inc.Var), ap.CommitVersion, got, inc.To)
			}
			if got := beforeAt.ProbOf(inc.Var); got != inc.From {
				t.Fatalf("apply %d tuple %d: snapshot@%d = %v, journal says from %v",
					i, int(inc.Var), ap.CommitVersion-1, got, inc.From)
			}
		}
		at.Release()
		beforeAt.Release()
	}
}

// TestMVCCReplayReconstructsConfidences folds the journal's apply
// events back into confidences and checks them — at the latest version
// and at each intermediate commit — against time-travel snapshots.
func TestMVCCReplayReconstructsConfidences(t *testing.T) {
	e := newVentureEngine(t, nil)
	log := &AuditLog{}
	e.SetAudit(log)
	cat := e.Catalog()

	req := Request{User: "mark", Query: ventureQuery, Purpose: "investment", MinFraction: 1.0}
	for _, beta := range []float64{0.06, 0.3, 0.5} {
		if err := e.Policies().Add(policy.ConfidencePolicy{Role: "manager", Purpose: "investment", Beta: beta}); err != nil {
			t.Fatal(err)
		}
		resp, err := e.Evaluate(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Proposal == nil {
			continue
		}
		if err := e.Apply(resp.Proposal); err != nil {
			t.Fatal(err)
		}
	}
	applies := log.ByKind(AuditApply)
	if len(applies) < 2 {
		t.Fatalf("apply events = %d, want at least 2", len(applies))
	}

	// At every apply's commit version, the replayed state must agree with
	// the snapshot, bit for bit.
	for _, ap := range applies {
		replayed := log.ReplayConfidences(ap.CommitVersion)
		snap, err := cat.SnapshotAt(ap.CommitVersion)
		if err != nil {
			t.Fatal(err)
		}
		for v, p := range replayed {
			if got := snap.ProbOf(v); got != p {
				t.Fatalf("replay@%d tuple %d = %v, snapshot = %v", ap.CommitVersion, int(v), p, got)
			}
		}
		snap.Release()
	}
	// The full replay matches the live catalog.
	full := log.ReplayConfidences(cat.Version())
	if len(full) == 0 {
		t.Fatal("full replay is empty")
	}
	for v, p := range full {
		if got := cat.ProbOf(v); got != p {
			t.Fatalf("full replay tuple %d = %v, live catalog = %v", int(v), p, got)
		}
	}
	// Replaying up to a version before any apply reconstructs nothing.
	if pre := log.ReplayConfidences(applies[0].CommitVersion - 1); len(pre) != 0 {
		t.Fatalf("replay before first apply = %v, want empty", pre)
	}
}

// TestMVCCEvaluateUnaffectedByConcurrentCommits pins an evaluation's
// response version and checks released confidences stay attributable to
// that single version even when commits land right after the snapshot.
func TestMVCCEvaluateUnaffectedByConcurrentCommits(t *testing.T) {
	e := newVentureEngine(t, nil)
	cat := e.Catalog()
	req := Request{User: "sue", Query: ventureQuery, Purpose: "analysis"}

	resp, err := e.Evaluate(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Version != cat.Version() {
		t.Fatalf("response version = %d, want %d", resp.Version, cat.Version())
	}
	// Replaying the same query against a historical snapshot at the
	// response's version reproduces the released confidence exactly.
	snap, err := cat.SnapshotAt(resp.Version)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	for _, row := range resp.Released {
		if got := snap.Confidence(row.Tuple); got != row.Confidence {
			t.Fatalf("confidence at version %d = %v, response says %v", resp.Version, got, row.Confidence)
		}
	}
}
