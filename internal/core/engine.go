// Package core implements the PCQE framework of the paper's Figure 1:
// it wires the query evaluator (internal/sql + internal/relation), the
// confidence-policy evaluator (internal/policy) and the strategy-finding
// component (internal/strategy) into the end-to-end flow —
//
//  1. a user submits ⟨Q, purpose, θ⟩;
//  2. the query runs and every intermediate result gets a confidence via
//     lineage propagation;
//  3. the applicable confidence policy filters the results: only rows
//     with confidence above the effective threshold β are released;
//  4. when fewer than θ·n rows survive, the strategy finder computes a
//     minimum-cost confidence-increment plan over the withheld rows'
//     base tuples and reports it as a proposal with its cost;
//  5. if the user accepts, the data-quality improvement step applies the
//     plan to the database and the query is re-evaluated.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"pcqe/internal/fault"
	"pcqe/internal/obs"
	"pcqe/internal/policy"
	"pcqe/internal/relation"
	"pcqe/internal/sql"
	"pcqe/internal/strategy"
)

// Engine is a PCQE instance over one database and one policy store.
type Engine struct {
	catalog  *relation.Catalog
	policies *policy.Store
	solver   strategy.Solver
	audit    *AuditLog
	// metrics and tracer are the optional observability surfaces
	// (internal/obs); both are nil-safe, so evaluation code threads them
	// unconditionally.
	metrics *obs.Metrics
	tracer  obs.Tracer
	// plans caches compiled operator trees keyed on normalized query
	// fingerprints; confs caches result-formula confidences keyed on
	// (lineage fingerprint, confidence epoch). Both invalidate through
	// the catalog's version/epoch counters.
	plans *sql.PlanCache
	confs *relation.ConfidenceCache
}

// NewEngine builds an engine. A nil solver defaults to the
// divide-and-conquer algorithm (the paper's most scalable choice).
func NewEngine(catalog *relation.Catalog, policies *policy.Store, solver strategy.Solver) *Engine {
	if solver == nil {
		solver = strategy.NewDivideAndConquer()
	}
	return &Engine{
		catalog: catalog, policies: policies, solver: solver,
		plans: sql.NewPlanCache(0),
		confs: relation.NewConfidenceCache(catalog, 0),
	}
}

// PlanCacheStats exposes the engine's plan-cache hit/miss counters.
func (e *Engine) PlanCacheStats() (hits, misses int64) { return e.plans.Stats() }

// ConfCacheStats exposes the engine's confidence-cache counters.
func (e *Engine) ConfCacheStats() relation.ConfCacheStats { return e.confs.Stats() }

// Catalog exposes the engine's database catalog.
func (e *Engine) Catalog() *relation.Catalog { return e.catalog }

// Policies exposes the engine's policy store.
func (e *Engine) Policies() *policy.Store { return e.policies }

// Request is the user input ⟨Q, pu, perc⟩ from Section 3.2.
type Request struct {
	// User issues the query; policies apply via the user's roles.
	User string
	// Query is the SQL text.
	Query string
	// Purpose states why the data is accessed.
	Purpose string
	// MinFraction is θ: the fraction of intermediate results the user
	// needs released. 0 disables improvement proposals.
	MinFraction float64
	// Timeout bounds the request's evaluation wall-clock, most
	// importantly the NP-hard improvement planning step: when it
	// expires, planning degrades to the solver's best incumbent (a
	// partial proposal) or is dropped, and the query results are still
	// returned. 0 = no limit. It combines with any deadline already on
	// the context passed to EvaluateContext (the earlier wins).
	Timeout time.Duration
	// Workers sizes the worker pool of a parallel-capable improvement
	// solver (divide-and-conquer group sub-solves) for this request:
	// 0 keeps the engine solver's own configuration, 1 forces serial,
	// n > 1 uses n workers. The plan is bit-identical for every value;
	// only wall-clock changes. Negative values are rejected.
	Workers int
	// MaxNodes, MaxPivots and MaxSteps bound the improvement solve's
	// work counters for this request (strategy.Budget semantics:
	// branch-and-bound node expansions, Shannon pivot evaluations,
	// δ-grid steps; 0 = unlimited). They are request-scoped so a server
	// hosting many sessions over one engine can give each session its
	// own solver allowance instead of configuring the shared solver
	// process-wide. Exhaustion degrades the response to the solver's
	// best incumbent, exactly like Timeout. Negative values are
	// rejected.
	MaxNodes  int
	MaxPivots int
	MaxSteps  int
}

// budget assembles the request's solver budget (work-counter bounds and
// worker-pool width; the wall clock is enforced through the context).
func (r Request) budget() strategy.Budget {
	return strategy.Budget{
		Workers:   r.Workers,
		MaxNodes:  r.MaxNodes,
		MaxPivots: r.MaxPivots,
		MaxSteps:  r.MaxSteps,
	}
}

// Row is one query result with its computed confidence.
type Row struct {
	Tuple      *relation.Tuple
	Confidence float64
}

// Response is the outcome of policy-compliant query evaluation.
type Response struct {
	// Schema describes the result columns.
	Schema *relation.Schema
	// Released holds the rows whose confidence clears the threshold,
	// in descending confidence order.
	Released []Row
	// Withheld holds the rows the policy filtered out (confidence at or
	// below the threshold), in descending confidence order. Callers in
	// trusted positions (the improvement planner) see them; a UI would
	// not display them.
	Withheld []Row
	// Threshold is the effective β; PolicyApplied reports whether any
	// policy matched (when false, every row is released and Threshold
	// is 0).
	Threshold     float64
	PolicyApplied bool
	// Proposal is non-nil when fewer than θ·n rows were released and an
	// improvement plan exists.
	Proposal *Proposal
	// Degraded is non-nil when improvement planning was cut short by the
	// request deadline, a solver budget, or a recovered solver fault
	// (typically a *strategy.BudgetExceededError or
	// *strategy.SolverPanicError). The response is still valid; Proposal
	// — when also present — is a best-effort partial plan.
	Degraded error
	// Timings is the request's phase span tree: eval (query execution),
	// lineage (confidence computation), policy-filter (threshold
	// partition + ordering) and strategy (improvement planning, with
	// per-solver and per-D&C-group child spans carrying node/step/pivot
	// counters). Always populated by EvaluateContext; when a tracer is
	// attached to the engine the same tree is also retained there.
	Timings *obs.Span
	// Version is the committed catalog version the whole evaluation read:
	// query execution, confidence computation and policy filtering all
	// resolved against this one snapshot, so every released row is
	// attributable to exactly this version.
	Version int64
}

// Need returns how many additional rows must clear the policy to honor
// the request's θ.
func (r *Response) Need(req Request) int {
	total := len(r.Released) + len(r.Withheld)
	want := int(math.Ceil(req.MinFraction * float64(total)))
	need := want - len(r.Released)
	if need < 0 {
		return 0
	}
	if need > len(r.Withheld) {
		return len(r.Withheld)
	}
	return need
}

// Evaluate runs the full PCQE flow for one request (steps 1–4 of
// Figure 1; Apply is step 5).
func (e *Engine) Evaluate(req Request) (*Response, error) {
	return e.EvaluateContext(context.Background(), req)
}

// EvaluateContext is Evaluate under a context: cancellation or deadline
// expiry (from ctx or req.Timeout) bounds the whole flow. Query
// evaluation that cannot start returns the context error; improvement
// planning instead degrades gracefully — the solver's best incumbent
// becomes a partial Proposal (or none), Response.Degraded records why,
// and the released rows are returned either way.
func (e *Engine) EvaluateContext(ctx context.Context, req Request) (*Response, error) {
	if math.IsNaN(req.MinFraction) || req.MinFraction < 0 || req.MinFraction > 1 {
		return nil, fmt.Errorf("core: min fraction θ=%g outside [0,1]", req.MinFraction)
	}
	if req.Workers < 0 {
		return nil, fmt.Errorf("core: workers must be non-negative, got %d (0 = solver default, 1 = serial)", req.Workers)
	}
	if req.MaxNodes < 0 || req.MaxPivots < 0 || req.MaxSteps < 0 {
		return nil, fmt.Errorf("core: solver budget must be non-negative, got nodes=%d pivots=%d steps=%d (0 = unlimited)",
			req.MaxNodes, req.MaxPivots, req.MaxSteps)
	}
	if req.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, req.Timeout)
		defer cancel()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e.metrics.Gauge("engine.inflight").Add(1)
	defer e.metrics.Gauge("engine.inflight").Add(-1)
	root := e.startSpan("request")

	// One snapshot covers the whole flow: query evaluation, confidence
	// computation and the improvement instance all read the same
	// committed version, whatever writers commit meanwhile.
	snap := e.catalog.Snapshot()
	defer snap.Release()
	root.SetAttr("snapshot_version", snap.Version())

	evalSpan := root.StartChild("eval")
	rows, schema, info, planHit, err := e.plans.QueryDetailedSnapHit(snap, req.Query)
	evalSpan.SetAttr("rows", int64(len(rows)))
	// Per-call attribution, not a Stats() delta: the cache counters are
	// shared by every concurrent session, so a before/after difference
	// here would charge this request with other sessions' lookups.
	planHits, planMisses := int64(0), int64(1)
	if planHit {
		planHits, planMisses = 1, 0
	}
	evalSpan.SetAttr("plan_cache_hits", planHits)
	evalSpan.SetAttr("plan_cache_misses", planMisses)
	if info != nil {
		costBased := int64(0)
		if info.CostBased {
			costBased = 1
		}
		evalSpan.SetAttr("cost_based", costBased)
		readOnceHint := int64(0)
		if info.LineageHint == "read-once" {
			readOnceHint = 1
		}
		evalSpan.SetAttr("lineage_hint_read_once", readOnceHint)
	}
	evalSpan.End()
	if err != nil {
		root.End()
		return nil, err
	}
	resp := &Response{Schema: schema, Timings: root, Version: snap.Version()}

	// Confidence computation is its own measured phase: lineage
	// probability is #P-hard in general and routinely dominates query
	// evaluation, so conflating the two would hide the dominant cost.
	// Each result formula routes by its complexity class (read-once /
	// bounded-pivot / hard) through the confidence cache; the span
	// carries the per-class row and Shannon-pivot totals.
	linSpan := root.StartChild("lineage")
	var cc relation.ConfCacheStats
	all := make([]Row, len(rows))
	for i, t := range rows {
		// A disconnected or deadline-expired client must not ride the
		// lineage phase to completion: confidence computation is #P-hard
		// and routinely dominates the request, and nothing below this
		// loop polls the context until the strategy phase. Poll between
		// rows (one formula is the natural cancellation grain) and bail
		// with the context error — there are no partial results worth
		// salvaging before the policy filter has run.
		if i&0x3f == 0 {
			fault.Probe("core.lineage.row")
			if err := ctx.Err(); err != nil {
				linSpan.SetStatus(err.Error())
				linSpan.End()
				root.End()
				return nil, err
			}
		}
		all[i] = Row{Tuple: t, Confidence: e.confs.ConfidenceAtAcc(t, snap, &cc)}
	}
	linSpan.SetAttr("rows", int64(len(all)))
	linSpan.SetAttr("readonce_rows", cc.Rows[relation.LineageReadOnce])
	linSpan.SetAttr("bounded_rows", cc.Rows[relation.LineageBounded])
	linSpan.SetAttr("hard_rows", cc.Rows[relation.LineageHard])
	linSpan.SetAttr("bounded_pivots", cc.Pivots[relation.LineageBounded])
	linSpan.SetAttr("hard_pivots", cc.Pivots[relation.LineageHard])
	linSpan.SetAttr("conf_cache_hits", cc.Hits)
	linSpan.SetAttr("conf_cache_misses", cc.Misses)
	linSpan.End()
	e.metrics.Counter("engine.confcache.hits").Add(cc.Hits)
	e.metrics.Counter("engine.confcache.misses").Add(cc.Misses)
	e.metrics.Counter("engine.lineage.pivots").Add(cc.Pivots[relation.LineageBounded] + cc.Pivots[relation.LineageHard])

	polSpan := root.StartChild("policy-filter")
	beta, applied := e.policies.Threshold(req.User, req.Purpose)
	resp.Threshold = beta
	resp.PolicyApplied = applied
	for _, row := range all {
		// Definition 1: access requires confidence strictly above β.
		if !applied || row.Confidence > beta {
			resp.Released = append(resp.Released, row)
		} else {
			resp.Withheld = append(resp.Withheld, row)
		}
	}
	sortRows(resp.Released)
	sortRows(resp.Withheld)
	polSpan.SetAttr("released", int64(len(resp.Released)))
	polSpan.SetAttr("withheld", int64(len(resp.Withheld)))
	polSpan.End()

	if applied && req.MinFraction > 0 {
		if need := resp.Need(req); need > 0 {
			stratSpan := root.StartChild("strategy")
			stratSpan.SetAttr("need", int64(need))
			prop, err := e.propose(obs.ContextWithSpan(ctx, stratSpan), resp, need, req.budget(), snap)
			switch {
			case err == nil || errors.Is(err, strategy.ErrInfeasible):
				// prop is nil on infeasibility: nothing to offer.
			case isDegradation(err):
				// Deadline/budget exhaustion or a recovered solver fault:
				// the query results stand, planning degrades. prop (when
				// non-nil) is the solver's partial incumbent.
				resp.Degraded = err
				stratSpan.SetStatus(err.Error())
			default:
				stratSpan.End()
				root.End()
				return nil, err
			}
			stratSpan.End()
			resp.Proposal = prop
			if prop != nil {
				prop.user, prop.purpose = req.User, req.Purpose
			}
		}
	}
	e.recordAudit(AuditEvent{
		Kind: AuditEvaluate, User: req.User, Purpose: req.Purpose,
		Query: req.Query, Beta: resp.Threshold,
		Released: len(resp.Released), Withheld: len(resp.Withheld),
		ReadVersion: snap.Version(),
	})
	if resp.Degraded != nil {
		e.recordAudit(AuditEvent{
			Kind: AuditDegrade, User: req.User, Purpose: req.Purpose,
			Query: req.Query, Beta: resp.Threshold,
			Partial: resp.Proposal != nil, Detail: resp.Degraded.Error(),
		})
	} else if resp.Proposal != nil && resp.Proposal.DegradedGroups() > 0 {
		// Group-level degradation: the divide-and-conquer driver absorbed
		// panicking or budget-starved group sub-solves into a still-valid
		// overall plan (no solve error), which would otherwise leave no
		// audit trail of the skipped groups.
		e.recordAudit(AuditEvent{
			Kind: AuditDegrade, User: req.User, Purpose: req.Purpose,
			Query: req.Query, Beta: resp.Threshold, Partial: true,
			Detail: fmt.Sprintf("%d divide-and-conquer group sub-solve(s) degraded", resp.Proposal.DegradedGroups()),
		})
	}
	if resp.Proposal != nil {
		e.recordAudit(AuditEvent{
			Kind: AuditPropose, User: req.User, Purpose: req.Purpose,
			Query: req.Query, Beta: resp.Threshold,
			Cost: resp.Proposal.Cost(), Increments: resp.Proposal.Increments(),
			Partial: resp.Proposal.Partial(),
		})
	}
	root.End()
	e.recordResponseMetrics(resp, root.Duration())
	return resp, nil
}

// startSpan opens a root span for one request: through the attached
// tracer when present (so the span is retained in its ring), otherwise
// standalone — Response.Timings is populated either way.
func (e *Engine) startSpan(name string) *obs.Span {
	if e.tracer != nil {
		return e.tracer.StartSpan(name)
	}
	return obs.NewSpan(name)
}

// recordResponseMetrics aggregates one evaluation into the metrics
// registry (a no-op without one).
func (e *Engine) recordResponseMetrics(resp *Response, took time.Duration) {
	if e.metrics == nil {
		return
	}
	e.metrics.Counter("engine.queries").Inc()
	e.metrics.Counter("engine.rows.released").Add(int64(len(resp.Released)))
	e.metrics.Counter("engine.rows.withheld").Add(int64(len(resp.Withheld)))
	e.metrics.Histogram("engine.request.seconds", obs.LatencyBuckets).Observe(took.Seconds())
	e.metrics.Histogram("engine.result.rows", obs.SizeBuckets).Observe(float64(len(resp.Released) + len(resp.Withheld)))
	if resp.Degraded != nil {
		e.metrics.Counter("engine.degraded").Inc()
	}
	if resp.Proposal != nil {
		e.metrics.Counter("engine.proposals").Inc()
		if resp.Proposal.Partial() {
			e.metrics.Counter("engine.proposals.partial").Inc()
		}
		e.metrics.Histogram("engine.proposal.cost", obs.CostBuckets).Observe(resp.Proposal.Cost())
	}
}

// isDegradation reports whether a solver error should degrade the
// response (partial or missing proposal) instead of failing the whole
// request: budget/deadline exhaustion and recovered solver panics
// qualify, structural errors (bad instance, unknown variables) do not.
func isDegradation(err error) bool {
	var bx *strategy.BudgetExceededError
	var px *strategy.SolverPanicError
	return errors.As(err, &bx) || errors.As(err, &px) ||
		errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}

// sortRows orders rows by descending confidence with a stable
// tuple-key tie-break: equal-confidence rows would otherwise keep
// whatever order the upstream operators produced, making Response
// output nondeterministic across evaluations (hash joins and map-based
// duplicate elimination do not promise an order).
func sortRows(rows []Row) {
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Confidence > rows[j].Confidence {
			return true
		}
		if rows[i].Confidence < rows[j].Confidence {
			return false
		}
		return rows[i].Tuple.Key() < rows[j].Tuple.Key()
	})
}

// String renders a short human-readable summary, including the
// degradation status: a partial plan advertised as a full-price
// proposal would misrepresent what the user is buying.
func (r *Response) String() string {
	s := fmt.Sprintf("released %d rows, withheld %d (threshold %.3g)",
		len(r.Released), len(r.Withheld), r.Threshold)
	if r.Degraded != nil {
		s += fmt.Sprintf("; degraded (%v)", r.Degraded)
	}
	if r.Proposal != nil {
		kind := "improvement"
		if r.Proposal.Partial() {
			kind = "partial improvement"
		}
		s += fmt.Sprintf("; %s available at cost %.4g", kind, r.Proposal.Cost())
	}
	return s
}
