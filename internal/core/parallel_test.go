package core

import (
	"context"
	"strings"
	"testing"

	"pcqe/internal/obs"
	"pcqe/internal/strategy"
)

func TestParallelWorkersValidation(t *testing.T) {
	e := newVentureEngine(t, nil)
	for _, bad := range []int{-1, -8} {
		req := blockedReq
		req.Workers = bad
		if _, err := e.Evaluate(req); err == nil || !strings.Contains(err.Error(), "workers") {
			t.Errorf("Workers = %d accepted: %v", bad, err)
		}
	}
	// 0 (solver default) and explicit widths are valid.
	for _, ok := range []int{0, 1, 4} {
		req := blockedReq
		req.Workers = ok
		if _, err := e.Evaluate(req); err != nil {
			t.Errorf("Workers = %d rejected: %v", ok, err)
		}
	}
}

// TestParallelDegradedGroupsAudited pins the audit trail for per-group
// degradation: a solve that succeeds overall but with degraded D&C group
// sub-solves must leave a partial AuditDegrade event naming the group
// count, and the proposal must expose it via DegradedGroups.
func TestParallelDegradedGroupsAudited(t *testing.T) {
	e := newVentureEngine(t, &stubSolver{
		solve: func(_ context.Context, in *strategy.Instance) (*strategy.Plan, error) {
			plan, err := (&strategy.Greedy{}).Solve(in)
			if err != nil {
				return nil, err
			}
			plan.Degraded = 2
			plan.Partial = true
			return plan, nil
		},
	})
	log := &AuditLog{}
	e.SetAudit(log)
	resp, err := e.Evaluate(blockedReq)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Proposal == nil {
		t.Fatal("expected a proposal")
	}
	if got := resp.Proposal.DegradedGroups(); got != 2 {
		t.Fatalf("DegradedGroups = %d, want 2", got)
	}
	deg := log.ByKind(AuditDegrade)
	if len(deg) != 1 {
		t.Fatalf("degrade events = %+v, want exactly one", deg)
	}
	if !deg[0].Partial {
		t.Fatal("group-degradation audit event not marked partial")
	}
	if !strings.Contains(deg[0].Detail, "2 divide-and-conquer group sub-solve") {
		t.Fatalf("event detail = %q, want the degraded group count", deg[0].Detail)
	}
}

// TestParallelNoDegradeAuditWhenClean pins the converse: a clean solve
// emits no degrade event.
func TestParallelNoDegradeAuditWhenClean(t *testing.T) {
	e := newVentureEngine(t, strategy.NewDivideAndConquer())
	log := &AuditLog{}
	e.SetAudit(log)
	if _, err := e.Evaluate(blockedReq); err != nil {
		t.Fatal(err)
	}
	if deg := log.ByKind(AuditDegrade); len(deg) != 0 {
		t.Fatalf("clean solve produced degrade events: %+v", deg)
	}
}

// TestParallelWorkersGauge pins the engine.solver.workers gauge: it
// reports the width the solver will actually use for the request.
func TestParallelWorkersGauge(t *testing.T) {
	e := newVentureEngine(t, strategy.NewDivideAndConquer())
	m := obs.New()
	e.SetMetrics(m)
	for _, w := range []int{3, 1} {
		req := blockedReq
		req.Workers = w
		if _, err := e.Evaluate(req); err != nil {
			t.Fatal(err)
		}
		if got := m.Snapshot().Gauges["engine.solver.workers"]; got != int64(w) {
			t.Fatalf("engine.solver.workers = %d after Workers=%d request", got, w)
		}
	}
}
