package core

import (
	"time"
)

// Advisor implements the paper's Section 6 outlook: because actually
// improving data quality takes time, a user can submit the query ahead
// of the moment the data is needed, and the system tells them "how much
// time in advance" to ask. The model prices time the way the instance
// prices money: each unit of improvement cost takes a configurable
// duration, improvements on distinct tuples may run concurrently up to a
// worker limit.
type Advisor struct {
	// PerCostUnit is how long one unit of improvement cost takes.
	PerCostUnit time.Duration
	// Workers is the number of improvement actions that can run
	// concurrently (e.g. auditors). Minimum 1.
	Workers int
}

// NewAdvisor returns an advisor with the given time-per-cost-unit and
// worker pool size.
func NewAdvisor(perCostUnit time.Duration, workers int) *Advisor {
	if workers < 1 {
		workers = 1
	}
	return &Advisor{PerCostUnit: perCostUnit, Workers: workers}
}

// LeadTime estimates how long applying the proposal takes: per-tuple
// durations are scheduled LPT (longest processing time first) onto the
// worker pool, a standard 4/3-approximation for makespan.
func (a *Advisor) LeadTime(p *Proposal) time.Duration {
	if p == nil {
		return 0
	}
	incs := p.Increments()
	if len(incs) == 0 {
		return 0
	}
	durations := make([]time.Duration, len(incs))
	for i, inc := range incs {
		durations[i] = time.Duration(inc.Cost * float64(a.PerCostUnit))
	}
	// Increments() is already sorted by descending cost, which is the
	// LPT order.
	loads := make([]time.Duration, a.Workers)
	for _, d := range durations {
		// Place on the least-loaded worker.
		min := 0
		for w := 1; w < len(loads); w++ {
			if loads[w] < loads[min] {
				min = w
			}
		}
		loads[min] += d
	}
	makespan := loads[0]
	for _, l := range loads[1:] {
		if l > makespan {
			makespan = l
		}
	}
	return makespan
}

// SerialTime is the lead time with a single worker (the sum of all
// per-increment durations) — the pessimistic bound the advisor reports
// alongside LeadTime.
func (a *Advisor) SerialTime(p *Proposal) time.Duration {
	if p == nil {
		return 0
	}
	var total time.Duration
	for _, inc := range p.Increments() {
		total += time.Duration(inc.Cost * float64(a.PerCostUnit))
	}
	return total
}
