package core

import (
	"math"
	"strings"
	"testing"
	"time"

	"pcqe/internal/cost"
	"pcqe/internal/policy"
	"pcqe/internal/relation"
	"pcqe/internal/strategy"
)

// newVentureEngine assembles the paper's complete running example:
// Tables 1–2, policies P1 (secretary/analysis/0.05) and P2
// (manager/investment/0.06), users sue (secretary) and mark (manager).
func newVentureEngine(t *testing.T, solver strategy.Solver) *Engine {
	t.Helper()
	c := relation.NewCatalog()
	proposal, err := c.CreateTable("Proposal", relation.NewSchema(
		relation.Column{Name: "Company", Type: relation.TypeString},
		relation.Column{Name: "Proposal", Type: relation.TypeString},
		relation.Column{Name: "Funding", Type: relation.TypeFloat},
	))
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.CreateTable("CompanyInfo", relation.NewSchema(
		relation.Column{Name: "Company", Type: relation.TypeString},
		relation.Column{Name: "Income", Type: relation.TypeFloat},
	))
	if err != nil {
		t.Fatal(err)
	}
	// Tuple numbering follows the paper: 02 and 03 are ZStart's
	// proposals, 13 is ZStart's financials. Raising 02 by 0.1 costs
	// 100; raising 03 by 0.1 costs 10.
	proposal.MustInsert(0.5, cost.Linear{Rate: 500},
		relation.String_("AcmeSoft"), relation.String_("cloud"), relation.Float(2e6))
	proposal.MustInsert(0.3, cost.Linear{Rate: 1000},
		relation.String_("ZStart"), relation.String_("sensor"), relation.Float(8e5))
	proposal.MustInsert(0.4, cost.Linear{Rate: 100},
		relation.String_("ZStart"), relation.String_("mobile"), relation.Float(9e5))
	info.MustInsert(0.1, cost.Linear{Rate: 2000},
		relation.String_("ZStart"), relation.Float(1.2e5))
	info.MustInsert(0.9, nil, relation.String_("AcmeSoft"), relation.Float(5e6))

	rbac := policy.NewRBAC()
	rbac.AddRole("secretary")
	rbac.AddRole("manager")
	if err := rbac.AssignUser("sue", "secretary"); err != nil {
		t.Fatal(err)
	}
	if err := rbac.AssignUser("mark", "manager"); err != nil {
		t.Fatal(err)
	}
	purposes := policy.NewPurposeTree()
	if err := purposes.Add("analysis", ""); err != nil {
		t.Fatal(err)
	}
	if err := purposes.Add("investment", ""); err != nil {
		t.Fatal(err)
	}
	store := policy.NewStore(rbac, purposes)
	if err := store.Add(policy.ConfidencePolicy{Role: "secretary", Purpose: "analysis", Beta: 0.05}); err != nil {
		t.Fatal(err)
	}
	if err := store.Add(policy.ConfidencePolicy{Role: "manager", Purpose: "investment", Beta: 0.06}); err != nil {
		t.Fatal(err)
	}
	return NewEngine(c, store, solver)
}

const ventureQuery = `
	SELECT DISTINCT CompanyInfo.Company, Income
	FROM CompanyInfo JOIN Proposal ON CompanyInfo.Company = Proposal.Company
	WHERE Funding < 1000000`

func TestSecretarySeesResult(t *testing.T) {
	e := newVentureEngine(t, nil)
	resp, err := e.Evaluate(Request{User: "sue", Query: ventureQuery, Purpose: "analysis"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.PolicyApplied || resp.Threshold != 0.05 {
		t.Fatalf("policy: applied=%v β=%v", resp.PolicyApplied, resp.Threshold)
	}
	// p38 = 0.058 > 0.05: released.
	if len(resp.Released) != 1 || len(resp.Withheld) != 0 {
		t.Fatalf("released=%d withheld=%d", len(resp.Released), len(resp.Withheld))
	}
	if math.Abs(resp.Released[0].Confidence-0.058) > 1e-9 {
		t.Fatalf("confidence = %v", resp.Released[0].Confidence)
	}
}

func TestManagerBlockedThenImproved(t *testing.T) {
	e := newVentureEngine(t, nil)
	req := Request{User: "mark", Query: ventureQuery, Purpose: "investment", MinFraction: 1.0}
	resp, err := e.Evaluate(req)
	if err != nil {
		t.Fatal(err)
	}
	// 0.058 < 0.06: withheld, proposal offered.
	if len(resp.Released) != 0 || len(resp.Withheld) != 1 {
		t.Fatalf("released=%d withheld=%d", len(resp.Released), len(resp.Withheld))
	}
	if resp.Proposal == nil {
		t.Fatal("expected an improvement proposal")
	}
	// The cheap fix: raise tuple 03 (cost rate 100) by one δ = cost 10.
	if math.Abs(resp.Proposal.Cost()-10) > 1e-9 {
		t.Fatalf("proposal cost = %v, want 10", resp.Proposal.Cost())
	}
	incs := resp.Proposal.Increments()
	if len(incs) != 1 || math.Abs(incs[0].To-0.5) > 1e-9 {
		t.Fatalf("increments = %+v", incs)
	}

	// The manager accepts; the improvement is applied; re-evaluation
	// releases the row (p38 = 0.065 > 0.06).
	if err := e.Apply(resp.Proposal); err != nil {
		t.Fatal(err)
	}
	resp2, err := e.Evaluate(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp2.Released) != 1 {
		t.Fatalf("after improvement: released=%d", len(resp2.Released))
	}
	if math.Abs(resp2.Released[0].Confidence-0.065) > 1e-9 {
		t.Fatalf("after improvement: confidence = %v, want 0.065", resp2.Released[0].Confidence)
	}
	if resp2.Proposal != nil {
		t.Fatal("no further proposal needed")
	}
}

func TestEvaluateWithAllSolvers(t *testing.T) {
	for _, s := range []strategy.Solver{
		&strategy.Greedy{},
		strategy.NewHeuristic(),
		strategy.NewDivideAndConquer(),
	} {
		e := newVentureEngine(t, s)
		resp, err := e.Evaluate(Request{User: "mark", Query: ventureQuery, Purpose: "investment", MinFraction: 1.0})
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if resp.Proposal == nil {
			t.Fatalf("%s: no proposal", s.Name())
		}
		if math.Abs(resp.Proposal.Cost()-10) > 1e-9 {
			t.Errorf("%s: cost %v, want 10", s.Name(), resp.Proposal.Cost())
		}
		if resp.Proposal.Solver() != s.Name() {
			t.Errorf("solver name %q", resp.Proposal.Solver())
		}
	}
}

func TestNoPolicyReleasesEverything(t *testing.T) {
	e := newVentureEngine(t, nil)
	// mark has no policy for "analysis" — open by default.
	resp, err := e.Evaluate(Request{User: "mark", Query: ventureQuery, Purpose: "analysis", MinFraction: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if resp.PolicyApplied {
		t.Fatal("no policy should apply")
	}
	if len(resp.Released) != 1 || resp.Proposal != nil {
		t.Fatalf("released=%d proposal=%v", len(resp.Released), resp.Proposal)
	}
}

func TestMinFractionZeroSkipsProposal(t *testing.T) {
	e := newVentureEngine(t, nil)
	resp, err := e.Evaluate(Request{User: "mark", Query: ventureQuery, Purpose: "investment"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Proposal != nil {
		t.Fatal("MinFraction 0 should not trigger planning")
	}
}

func TestBadQuerySurfacesError(t *testing.T) {
	e := newVentureEngine(t, nil)
	if _, err := e.Evaluate(Request{User: "sue", Query: "SELECT nope FROM missing", Purpose: "analysis"}); err == nil {
		t.Fatal("expected query error")
	}
}

func TestApplyValidation(t *testing.T) {
	e := newVentureEngine(t, nil)
	if err := e.Apply(nil); err == nil {
		t.Fatal("nil proposal should fail")
	}
	resp, err := e.Evaluate(Request{User: "mark", Query: ventureQuery, Purpose: "investment", MinFraction: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	// Tamper with the plan: Apply must refuse.
	resp.Proposal.plan.Cost = 1
	if err := e.Apply(resp.Proposal); err == nil {
		t.Fatal("tampered proposal should be refused")
	}
}

func TestUnimprovableTuplesAreFrozen(t *testing.T) {
	e := newVentureEngine(t, nil)
	// Freeze tuples 02 and 03 (no cost functions) so only tuple 13
	// could improve; the threshold is then unreachable if 13 is frozen
	// too.
	cat := e.Catalog()
	tab, _ := cat.Table("Proposal")
	for _, row := range tab.Rows() {
		row.Cost = nil
	}
	info, _ := cat.Table("CompanyInfo")
	for _, row := range info.Rows() {
		row.Cost = nil
	}
	resp, err := e.Evaluate(Request{User: "mark", Query: ventureQuery, Purpose: "investment", MinFraction: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Proposal != nil {
		t.Fatal("no proposal should exist when nothing is improvable")
	}
}

func TestResponseNeed(t *testing.T) {
	r := &Response{
		Released: make([]Row, 2),
		Withheld: make([]Row, 3),
	}
	if n := r.Need(Request{MinFraction: 0.5}); n != 1 {
		t.Errorf("need = %d, want ⌈0.5·5⌉−2 = 1", n)
	}
	if n := r.Need(Request{MinFraction: 0.2}); n != 0 {
		t.Errorf("need = %d, want 0", n)
	}
	if n := r.Need(Request{MinFraction: 1.0}); n != 3 {
		t.Errorf("need = %d, want 3", n)
	}
}

func TestReportRendering(t *testing.T) {
	e := newVentureEngine(t, nil)
	resp, err := e.Evaluate(Request{User: "mark", Query: ventureQuery, Purpose: "investment", MinFraction: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	rep := resp.Report()
	for _, want := range []string{"confidence", "β=0.06", "withheld 1", "raise tuple", "cost 10"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	if !strings.Contains(resp.String(), "withheld 1") {
		t.Errorf("String() = %q", resp.String())
	}
}

func TestAdvisor(t *testing.T) {
	e := newVentureEngine(t, nil)
	resp, err := e.Evaluate(Request{User: "mark", Query: ventureQuery, Purpose: "investment", MinFraction: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	adv := NewAdvisor(time.Minute, 2)
	lead := adv.LeadTime(resp.Proposal)
	if d := (lead - 10*time.Minute).Abs(); d > time.Millisecond {
		t.Errorf("lead time = %v, want ≈10m (cost 10 × 1m)", lead)
	}
	if d := (adv.SerialTime(resp.Proposal) - 10*time.Minute).Abs(); d > time.Millisecond {
		t.Errorf("serial time = %v", adv.SerialTime(resp.Proposal))
	}
	if adv.LeadTime(nil) != 0 || adv.SerialTime(nil) != 0 {
		t.Error("nil proposal should cost no time")
	}
	// Parallelism: two increments of equal cost on two workers take one
	// increment's duration.
	if w := NewAdvisor(time.Minute, 0); w.Workers != 1 {
		t.Error("workers clamp to 1")
	}
}

func TestEvaluateMultiSharedPlan(t *testing.T) {
	e := newVentureEngine(t, nil)
	reqs := []Request{
		{User: "mark", Query: ventureQuery, Purpose: "investment", MinFraction: 1.0},
		{User: "mark", Query: `SELECT DISTINCT Company FROM Proposal WHERE Funding < 1000000`,
			Purpose: "investment", MinFraction: 1.0},
	}
	resps, prop, err := e.EvaluateMulti(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 2 {
		t.Fatalf("responses = %d", len(resps))
	}
	// Query 2's result (Candidate) has confidence 0.58 > 0.06: no need.
	// Query 1 needs improvement; a shared plan must exist.
	if prop == nil {
		t.Fatal("expected a shared proposal")
	}
	if resps[0].Proposal != prop {
		t.Fatal("query 1 should carry the shared proposal")
	}
	if resps[1].Proposal != nil {
		t.Fatal("query 2 needed nothing")
	}
	if err := e.Apply(prop); err != nil {
		t.Fatal(err)
	}
	resp, err := e.Evaluate(reqs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Released) != 1 {
		t.Fatalf("after shared improvement: released = %d", len(resp.Released))
	}
}

func TestEvaluateMultiBothNeedImprovement(t *testing.T) {
	e := newVentureEngine(t, nil)
	// Tighten the manager policy so both queries fall short.
	if err := e.Policies().Add(policy.ConfidencePolicy{Role: "manager", Purpose: "investment", Beta: 0.7}); err != nil {
		t.Fatal(err)
	}
	reqs := []Request{
		{User: "mark", Query: ventureQuery, Purpose: "investment", MinFraction: 1.0},
		{User: "mark", Query: `SELECT DISTINCT Company FROM Proposal WHERE Funding < 1000000`,
			Purpose: "investment", MinFraction: 1.0},
	}
	resps, prop, err := e.EvaluateMulti(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if prop == nil {
		t.Fatal("expected a shared proposal")
	}
	if err := e.Apply(prop); err != nil {
		t.Fatal(err)
	}
	for i, req := range reqs {
		resp, err := e.Evaluate(req)
		if err != nil {
			t.Fatal(err)
		}
		if got := resp.Need(req); got != 0 {
			t.Errorf("query %d still needs %d rows after shared improvement (released %d, withheld %d)",
				i, got, len(resps[i].Released), len(resp.Withheld))
		}
	}
}

func TestEvaluateMultiNoNeeds(t *testing.T) {
	e := newVentureEngine(t, nil)
	reqs := []Request{
		{User: "sue", Query: ventureQuery, Purpose: "analysis", MinFraction: 1.0},
	}
	resps, prop, err := e.EvaluateMulti(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if prop != nil {
		t.Fatal("nothing to improve")
	}
	if len(resps[0].Released) != 1 {
		t.Fatal("secretary query should release its row")
	}
}

func TestResponseStats(t *testing.T) {
	e := newVentureEngine(t, nil)
	resp, err := e.Evaluate(Request{User: "mark", Query: ventureQuery, Purpose: "investment"})
	if err != nil {
		t.Fatal(err)
	}
	s := resp.FullStats()
	if s.Total != 1 || s.Released != 0 || s.Withheld != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if math.Abs(s.Min-0.058) > 1e-9 || math.Abs(s.Max-0.058) > 1e-9 || math.Abs(s.Mean-0.058) > 1e-9 {
		t.Fatalf("min/max/mean = %v/%v/%v", s.Min, s.Max, s.Mean)
	}
	if s.Histogram[0] != 1 {
		t.Fatalf("histogram = %v", s.Histogram)
	}
	// The user-facing summary must not leak the withheld confidence: the
	// response has no released rows, so every aggregate stays zero.
	if pub := resp.Stats(); pub.Total != 1 || pub.Withheld != 1 || pub.Min != 0 || pub.Max != 0 || pub.Mean != 0 {
		t.Fatalf("released-only stats leak withheld confidences: %+v", pub)
	}
	// Empty response.
	empty := &Response{}
	if st := empty.Stats(); st.Total != 0 || st.Min != 0 || st.Max != 0 {
		t.Fatalf("empty stats = %+v", st)
	}
}

func TestAdvisorLPTScheduling(t *testing.T) {
	// Increments with costs 5, 4, 3, 3 on 2 workers: LPT gives loads
	// (5+3, 4+3) → makespan 8 cost units.
	in := &strategy.Instance{
		Beta:  0.9,
		Delta: 0.1,
		Need:  4,
	}
	// Hand-build a proposal through the engine path: four independent
	// single-tuple results needing a 0.5→0.9+ raise each, with linear
	// rates chosen to produce the desired increment costs.
	cat := relation.NewCatalog()
	tab, err := cat.CreateTable("T", relation.NewSchema(relation.Column{Name: "a", Type: relation.TypeInt}))
	if err != nil {
		t.Fatal(err)
	}
	_ = in
	rates := []float64{12.5, 10, 7.5, 7.5} // ×0.4 raise = 5, 4, 3, 3
	for i, rate := range rates {
		tab.MustInsert(0.5, cost.Linear{Rate: rate}, relation.Int(int64(i)))
	}
	rbac := policy.NewRBAC()
	rbac.AddRole("r")
	if err := rbac.AssignUser("u", "r"); err != nil {
		t.Fatal(err)
	}
	purposes := policy.NewPurposeTree()
	if err := purposes.Add("p", ""); err != nil {
		t.Fatal(err)
	}
	store := policy.NewStore(rbac, purposes)
	if err := store.Add(policy.ConfidencePolicy{Role: "r", Purpose: "p", Beta: 0.89}); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(cat, store, nil)
	resp, err := e.Evaluate(Request{User: "u", Purpose: "p", MinFraction: 1.0, Query: `SELECT a FROM T`})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Proposal == nil {
		t.Fatal("expected proposal")
	}
	incs := resp.Proposal.Increments()
	if len(incs) != 4 {
		t.Fatalf("increments = %d", len(incs))
	}
	adv := NewAdvisor(time.Hour, 2)
	lead := adv.LeadTime(resp.Proposal)
	if d := (lead - 8*time.Hour).Abs(); d > time.Minute {
		t.Fatalf("LPT makespan = %v, want ≈8h", lead)
	}
	serial := adv.SerialTime(resp.Proposal)
	if d := (serial - 15*time.Hour).Abs(); d > time.Minute {
		t.Fatalf("serial = %v, want ≈15h", serial)
	}
	// Enough workers: makespan = longest single increment.
	wide := NewAdvisor(time.Hour, 8)
	if d := (wide.LeadTime(resp.Proposal) - 5*time.Hour).Abs(); d > time.Minute {
		t.Fatalf("8-worker makespan = %v, want ≈5h", wide.LeadTime(resp.Proposal))
	}
}
