package core

import (
	"context"
	"errors"
	"testing"

	"pcqe/internal/strategy"
)

// Regression for the silent multi-query degradation hole: a shared
// solve cut short by budget/deadline used to fall back to "no shared
// plan" without marking the responses degraded, without salvaging the
// anytime incumbent, and without an audit event — an unreviewable
// policy decision.

func multiReqs() []Request {
	return []Request{
		{User: "u", Purpose: "p", MinFraction: 0.5,
			Query: `SELECT V FROM Items WHERE Kind = 'a'`},
		{User: "u", Purpose: "p", MinFraction: 0.75,
			Query: `SELECT V FROM Items WHERE Kind = 'b'`},
	}
}

func TestEvaluateMultiDegradedSolveIsAudited(t *testing.T) {
	e := overlapEngine(t)
	budgetErr := &strategy.BudgetExceededError{Solver: "stub", Resource: strategy.ResourceDeadline}
	e.solver = &stubSolver{
		solve: func(context.Context, *strategy.Instance) (*strategy.Plan, error) {
			return nil, budgetErr
		},
	}
	log := &AuditLog{}
	e.SetAudit(log)

	resps, prop, err := e.EvaluateMulti(multiReqs())
	if err != nil {
		t.Fatalf("budget exhaustion must not fail the request batch: %v", err)
	}
	if prop != nil {
		t.Fatal("no incumbent means no shared proposal")
	}
	for i, resp := range resps {
		if !errors.Is(resp.Degraded, error(budgetErr)) {
			t.Errorf("response %d Degraded = %v, want the solver's budget error", i, resp.Degraded)
		}
	}
	deg := log.ByKind(AuditDegrade)
	if len(deg) != 1 {
		t.Fatalf("degrade audit events = %+v, want exactly one", deg)
	}
	if deg[0].Partial {
		t.Fatal("no incumbent survived; the degrade event must not claim a partial plan")
	}
	if deg[0].User != "u" || deg[0].Purpose != "p" {
		t.Fatalf("degrade event identity = %q/%q", deg[0].User, deg[0].Purpose)
	}
}

func TestEvaluateMultiSalvagesPartialIncumbent(t *testing.T) {
	e := overlapEngine(t)
	budgetErr := &strategy.BudgetExceededError{Solver: "stub", Resource: strategy.ResourceSteps}
	e.solver = &stubSolver{
		solve: func(_ context.Context, in *strategy.Instance) (*strategy.Plan, error) {
			plan, err := (&strategy.Greedy{}).Solve(in)
			if err != nil {
				return nil, err
			}
			plan.Partial = true
			return plan, budgetErr
		},
	}
	log := &AuditLog{}
	e.SetAudit(log)

	resps, prop, err := e.EvaluateMulti(multiReqs())
	if err != nil {
		t.Fatal(err)
	}
	if prop == nil || !prop.Partial() {
		t.Fatalf("proposal = %+v, want a salvaged partial shared proposal", prop)
	}
	for i, resp := range resps {
		if resp.Degraded == nil {
			t.Errorf("response %d not marked degraded", i)
		}
		if resp.Proposal != prop {
			t.Errorf("response %d missing the shared proposal", i)
		}
	}
	deg := log.ByKind(AuditDegrade)
	if len(deg) != 1 || !deg[0].Partial {
		t.Fatalf("degrade events = %+v, want one carrying a partial plan", deg)
	}
	props := log.ByKind(AuditPropose)
	if len(props) != 1 || !props[0].Partial {
		t.Fatalf("propose events = %+v, want one partial shared proposal", props)
	}
	// A feasible partial shared plan is still applicable.
	if err := e.Apply(prop); err != nil {
		t.Fatalf("applying salvaged partial plan: %v", err)
	}
}

func TestEvaluateMultiCleanSolveRecordsPropose(t *testing.T) {
	e := overlapEngine(t)
	log := &AuditLog{}
	e.SetAudit(log)
	_, prop, err := e.EvaluateMulti(multiReqs())
	if err != nil {
		t.Fatal(err)
	}
	if prop == nil || prop.Partial() {
		t.Fatalf("proposal = %+v, want a full shared proposal", prop)
	}
	if deg := log.ByKind(AuditDegrade); len(deg) != 0 {
		t.Fatalf("clean solve produced degrade events: %+v", deg)
	}
	props := log.ByKind(AuditPropose)
	if len(props) != 1 || props[0].Partial {
		t.Fatalf("propose events = %+v, want one full proposal", props)
	}
	if props[0].Cost != prop.Cost() {
		t.Fatalf("audited cost %v != proposal cost %v", props[0].Cost, prop.Cost())
	}
}
