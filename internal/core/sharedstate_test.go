package core

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

// TestEngineSharedStateFreedom is the dynamic counterpart of the
// sharedstate analyzer for the engine layer: fully independent engines
// (own catalog, own policy store, own caches) evaluating concurrently
// share no package-level state, so sessions cannot interfere — every
// engine must keep returning exactly its own catalog's answer, with
// the policy filter applied. CI's resilience job runs this under -race.
func TestEngineSharedStateFreedom(t *testing.T) {
	const sessions = 8
	engines := make([]*Engine, sessions)
	for i := range engines {
		engines[i] = newVentureEngine(t, nil)
	}
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i, e := range engines {
		wg.Add(1)
		go func(i int, e *Engine) {
			defer wg.Done()
			for k := 0; k < 5; k++ {
				resp, err := e.Evaluate(Request{User: "sue", Query: ventureQuery, Purpose: "analysis"})
				if err != nil {
					errs <- fmt.Errorf("engine %d iteration %d: %w", i, k, err)
					return
				}
				if !resp.PolicyApplied || resp.Threshold != 0.05 {
					errs <- fmt.Errorf("engine %d lost its policy: applied=%v β=%v", i, resp.PolicyApplied, resp.Threshold)
					return
				}
				if len(resp.Released) != 1 || len(resp.Withheld) != 0 ||
					math.Abs(resp.Released[0].Confidence-0.058) > 1e-9 {
					errs <- fmt.Errorf("engine %d drifted: released=%d withheld=%d", i, len(resp.Released), len(resp.Withheld))
					return
				}
			}
		}(i, e)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
