package core

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"pcqe/internal/strategy"
)

// stubSolver scripts the strategy layer's outcome so the engine's
// degradation handling can be tested in isolation.
type stubSolver struct {
	solve func(ctx context.Context, in *strategy.Instance) (*strategy.Plan, error)
}

func (s *stubSolver) Name() string { return "stub" }
func (s *stubSolver) Solve(in *strategy.Instance) (*strategy.Plan, error) {
	return s.solve(context.Background(), in)
}
func (s *stubSolver) SolveContext(ctx context.Context, in *strategy.Instance, b strategy.Budget) (*strategy.Plan, error) {
	return s.solve(ctx, in)
}

var blockedReq = Request{User: "mark", Query: ventureQuery, Purpose: "investment", MinFraction: 1.0}

func TestDegradeWithoutIncumbent(t *testing.T) {
	budgetErr := &strategy.BudgetExceededError{Solver: "stub", Resource: strategy.ResourceDeadline}
	e := newVentureEngine(t, &stubSolver{
		solve: func(context.Context, *strategy.Instance) (*strategy.Plan, error) {
			return nil, budgetErr
		},
	})
	log := &AuditLog{}
	e.SetAudit(log)
	resp, err := e.Evaluate(blockedReq)
	if err != nil {
		t.Fatalf("budget exhaustion must not fail the request: %v", err)
	}
	if !errors.Is(resp.Degraded, error(budgetErr)) {
		t.Fatalf("Degraded = %v, want the solver's budget error", resp.Degraded)
	}
	if resp.Proposal != nil {
		t.Fatal("no incumbent means no proposal")
	}
	if len(resp.Withheld) != 1 {
		t.Fatal("query results must still be returned")
	}
	events := log.ByKind(AuditDegrade)
	if len(events) != 1 || events[0].Partial {
		t.Fatalf("degrade audit events = %+v", events)
	}
	if !strings.Contains(events[0].String(), "degrade") {
		t.Fatalf("event renders as %q", events[0].String())
	}
	if !strings.Contains(resp.Report(), "planning degraded") {
		t.Fatalf("report missing degradation notice:\n%s", resp.Report())
	}
}

func TestDegradeWithPartialIncumbent(t *testing.T) {
	budgetErr := &strategy.BudgetExceededError{Solver: "stub", Resource: strategy.ResourceSteps}
	e := newVentureEngine(t, &stubSolver{
		solve: func(_ context.Context, in *strategy.Instance) (*strategy.Plan, error) {
			plan, err := (&strategy.Greedy{}).Solve(in)
			if err != nil {
				return nil, err
			}
			plan.Partial = true
			return plan, budgetErr
		},
	})
	log := &AuditLog{}
	e.SetAudit(log)
	resp, err := e.Evaluate(blockedReq)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Degraded == nil {
		t.Fatal("Degraded not set")
	}
	if resp.Proposal == nil || !resp.Proposal.Partial() {
		t.Fatalf("proposal = %+v, want a partial proposal", resp.Proposal)
	}
	if math.Abs(resp.Proposal.Cost()-10) > 1e-9 {
		t.Fatalf("partial proposal cost = %v", resp.Proposal.Cost())
	}
	rep := resp.Report()
	if !strings.Contains(rep, "partial improvement proposal") || !strings.Contains(rep, "planning degraded") {
		t.Fatalf("report missing partial markers:\n%s", rep)
	}
	deg := log.ByKind(AuditDegrade)
	if len(deg) != 1 || !deg[0].Partial {
		t.Fatalf("degrade events = %+v", deg)
	}
	prop := log.ByKind(AuditPropose)
	if len(prop) != 1 || !prop[0].Partial {
		t.Fatalf("propose events = %+v", prop)
	}
	if !strings.Contains(prop[0].String(), "partial") {
		t.Fatalf("propose event renders as %q", prop[0].String())
	}
	// A feasible partial plan is still applicable.
	if err := e.Apply(resp.Proposal); err != nil {
		t.Fatalf("applying feasible partial plan: %v", err)
	}
}

func TestDegradeOnSolverPanic(t *testing.T) {
	panicErr := &strategy.SolverPanicError{Solver: "stub", Fingerprint: "x", Value: "boom"}
	e := newVentureEngine(t, &stubSolver{
		solve: func(context.Context, *strategy.Instance) (*strategy.Plan, error) {
			return nil, panicErr
		},
	})
	resp, err := e.Evaluate(blockedReq)
	if err != nil {
		t.Fatalf("recovered solver panic must not fail the request: %v", err)
	}
	if !errors.Is(resp.Degraded, error(panicErr)) {
		t.Fatalf("Degraded = %v", resp.Degraded)
	}
}

func TestStructuralSolverErrorStillFails(t *testing.T) {
	e := newVentureEngine(t, &stubSolver{
		solve: func(context.Context, *strategy.Instance) (*strategy.Plan, error) {
			return nil, errors.New("solver misconfigured")
		},
	})
	if _, err := e.Evaluate(blockedReq); err == nil {
		t.Fatal("structural errors must surface, not degrade")
	}
}

func TestRequestTimeoutReachesSolver(t *testing.T) {
	e := newVentureEngine(t, &stubSolver{
		solve: func(ctx context.Context, in *strategy.Instance) (*strategy.Plan, error) {
			// Simulate a long solve that honors cancellation.
			select {
			case <-ctx.Done():
				return nil, &strategy.BudgetExceededError{
					Solver: "stub", Resource: strategy.ResourceDeadline, Err: ctx.Err(),
				}
			case <-time.After(5 * time.Second):
				return (&strategy.Greedy{}).Solve(in)
			}
		},
	})
	req := blockedReq
	req.Timeout = 20 * time.Millisecond
	start := time.Now()
	resp, err := e.Evaluate(req)
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatalf("request did not respect its timeout (%v elapsed)", time.Since(start))
	}
	if resp.Degraded == nil || !errors.Is(resp.Degraded, context.DeadlineExceeded) {
		t.Fatalf("Degraded = %v, want deadline exhaustion", resp.Degraded)
	}
}

func TestEvaluateContextCanceled(t *testing.T) {
	e := newVentureEngine(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.EvaluateContext(ctx, blockedReq); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMinFractionValidation(t *testing.T) {
	e := newVentureEngine(t, nil)
	for _, bad := range []float64{math.NaN(), -0.1, 1.5, math.Inf(1)} {
		req := blockedReq
		req.MinFraction = bad
		if _, err := e.Evaluate(req); err == nil {
			t.Errorf("MinFraction %v accepted", bad)
		}
	}
}

func TestRealSolverDeadlineEndToEnd(t *testing.T) {
	// With a real solver and an effectively-zero planning window, the
	// engine still returns the query results and records the
	// degradation. A pre-expired context deadline exercises the same
	// path deterministically.
	e := newVentureEngine(t, strategy.NewDivideAndConquer())
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	// Query evaluation refuses to start under an expired context.
	if _, err := e.EvaluateContext(ctx, blockedReq); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline error before query start", err)
	}
}
