package core

import (
	"context"
	"fmt"
	"sort"

	"pcqe/internal/conf"
	"pcqe/internal/cost"
	"pcqe/internal/fault"
	"pcqe/internal/lineage"
	"pcqe/internal/obs"
	"pcqe/internal/relation"
	"pcqe/internal/strategy"
)

// Proposal is the strategy finder's answer: which base tuples to
// improve, to what confidence, and at what total cost. The user (or the
// caller acting for them) accepts it with Engine.Apply.
type Proposal struct {
	instance *strategy.Instance
	plan     *strategy.Plan
	solver   string
	// skipped counts withheld rows whose lineage could not enter the
	// optimization (non-monotone lineage from EXCEPT-style queries).
	skipped int
	// partial marks a plan cut short by a deadline or budget: feasible
	// for fewer results (or unrefined) compared to a full solve.
	partial bool
	// user and purpose identify the request that triggered the
	// proposal, for the audit journal.
	user, purpose string
	// readVersion is the committed catalog version the proposal's
	// instance was built from; Apply records it alongside the version
	// its transaction commits, bracketing the plan in the audit journal.
	readVersion int64
}

// Cost is the total improvement cost of the plan.
func (p *Proposal) Cost() float64 { return p.plan.Cost }

// ReadVersion is the committed catalog version the proposal was built
// from (0 for proposals built before version tracking).
func (p *Proposal) ReadVersion() int64 { return p.readVersion }

// Solver names the algorithm that produced the plan.
func (p *Proposal) Solver() string { return p.solver }

// Skipped reports how many withheld rows were not improvable (their
// lineage contains negation).
func (p *Proposal) Skipped() int { return p.skipped }

// Partial reports whether the plan is a best-effort incumbent returned
// under a deadline or budget rather than a completed solve. Partial
// plans are still internally consistent (they pass Verify when they
// satisfy enough results) but may cost more or satisfy fewer rows than
// a full solve would.
func (p *Proposal) Partial() bool { return p.partial }

// DegradedGroups reports how many divide-and-conquer group sub-solves
// behind the plan panicked or exhausted their budget and were skipped
// or served by a cheaper fallback (0 for other solvers and clean
// solves). The engine journals an audit event when it is non-zero, so
// silently absorbed group failures stay reviewable.
func (p *Proposal) DegradedGroups() int { return p.plan.Degraded }

// Increment is one suggested confidence raise.
type Increment struct {
	Var  lineage.Var
	From float64
	To   float64
	Cost float64
}

// Increments lists the per-tuple raises in descending cost order.
func (p *Proposal) Increments() []Increment {
	var out []Increment
	for i, b := range p.instance.Base {
		np := p.plan.NewP[i]
		if conf.GT(np, b.P) {
			out = append(out, Increment{
				Var:  b.Var,
				From: b.P,
				To:   np,
				Cost: b.Cost.Increment(b.P, np),
			})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Cost != out[b].Cost {
			return out[a].Cost > out[b].Cost
		}
		return out[a].Var < out[b].Var
	})
	return out
}

// propose builds the optimization instance from the withheld rows and
// solves it under the request context and the request's solver budget
// (work-counter bounds and worker-pool width from Request via
// Request.budget; the wall clock rides on ctx). When the solver runs
// out of deadline or budget but still produced an anytime incumbent,
// propose returns that plan as a partial Proposal alongside the
// *strategy.BudgetExceededError so the caller can degrade instead of
// fail.
func (e *Engine) propose(ctx context.Context, resp *Response, need int, budget strategy.Budget, snap *relation.Snapshot) (*Proposal, error) {
	in := &strategy.Instance{
		Beta: resp.Threshold + betaMargin,
		// The paper's evaluation grid uses δ=0.1; keep it as the
		// default planning granularity.
		Delta: 0.1,
	}
	seen := map[lineage.Var]int{}
	skipped := 0
	for _, row := range resp.Withheld {
		if !row.Tuple.Lineage.Monotone() {
			skipped++
			continue
		}
		// Simplification (idempotence/absorption) shrinks lineage that
		// duplicate-eliminating operators inflated, which keeps the
		// optimization formulas small and read-once where possible.
		formula := lineage.Simplify(row.Tuple.Lineage)
		for _, v := range formula.Vars() {
			if _, ok := seen[v]; ok {
				continue
			}
			// Resolve at the evaluation's snapshot: the instance's starting
			// confidences must match the ones the withheld rows were
			// filtered under, not whatever a concurrent commit left behind.
			base, ok := snap.BaseTupleByVar(v)
			if !ok {
				return nil, fmt.Errorf("core: lineage references unknown base tuple %d", int(v))
			}
			bt := strategy.BaseTuple{
				Var:  v,
				P:    base.Confidence,
				MaxP: base.MaxConf,
				Cost: base.Cost,
			}
			if bt.Cost == nil || base.Confidence >= base.MaxConf {
				// Not improvable: freeze at the current confidence.
				bt.MaxP = base.Confidence
				//lint:allow confrange exact zero-value probe: strategy treats
				// MaxP==0 as "unset, default to 1", so a genuinely frozen-at-0
				// tuple must dodge the sentinel with the tiniest nonzero cap.
				if bt.MaxP == 0 {
					bt.MaxP = 1e-12 // MaxP 0 means "default to 1" in strategy
				}
				bt.Cost = cost.Linear{Rate: 0}
			}
			seen[v] = len(in.Base)
			in.Base = append(in.Base, bt)
		}
		in.Results = append(in.Results, strategy.Result{
			ID:      len(in.Results),
			Formula: formula,
		})
	}
	if need > len(in.Results) {
		need = len(in.Results)
	}
	if need == 0 {
		return nil, strategy.ErrInfeasible
	}
	in.Need = need
	e.metrics.Gauge("engine.solver.workers").Set(int64(strategy.EffectiveWorkers(e.solver, budget)))
	plan, err := strategy.SolveContext(ctx, e.solver, in, budget)
	if plan == nil && err != nil {
		return nil, err
	}
	prop := &Proposal{
		instance: in, plan: plan, solver: e.solver.Name(), skipped: skipped,
		partial: plan.Partial, readVersion: snap.Version(),
	}
	return prop, err
}

// betaMargin lifts the optimization target infinitesimally above the
// policy threshold: Definition 1 releases rows with confidence strictly
// greater than β while the optimization constraints use ≥, so planning
// exactly to β could satisfy the solver yet still fail the policy.
const betaMargin = 1e-9

// Apply performs the data-quality improvement step: it writes the
// proposal's new confidences into the catalog as ONE transaction —
// every increment commits atomically or none does. A fault (injected
// at the "core.apply.increment" probe or genuine) mid-apply rolls the
// transaction back, journals an AuditRollback event and leaves every
// confidence bit-identical to the pre-transaction state. The audit
// event of a successful apply records the proposal's read version and
// the transaction's commit version. Re-evaluating the request
// afterwards releases the additional rows.
//
// Increments merge by maximum: a tuple whose confidence a concurrent
// apply already raised to (or past) the target is skipped rather than
// lowered, so overlapping plans compose instead of fighting.
func (e *Engine) Apply(p *Proposal) (err error) {
	if p == nil {
		return fmt.Errorf("core: nil proposal")
	}
	if err := p.instance.Verify(p.plan); err != nil {
		return fmt.Errorf("core: refusing to apply inconsistent proposal: %w", err)
	}
	x := e.catalog.Begin()
	defer func() {
		if r := recover(); r != nil {
			x.Rollback()
			err = fmt.Errorf("core: apply fault: %v", r)
			e.recordApplyRollback(p, err)
		}
	}()
	for i, b := range p.instance.Base {
		np := p.plan.NewP[i]
		if !conf.GT(np, b.P) {
			continue
		}
		fault.Probe("core.apply.increment")
		if cur, ok := x.ConfidenceOf(b.Var); ok && conf.GE(cur, np) {
			continue // already at or past the target: max-merge
		}
		if err := x.SetConfidence(b.Var, np); err != nil {
			x.Rollback()
			err = fmt.Errorf("core: applying increment to tuple %d: %w", int(b.Var), err)
			e.recordApplyRollback(p, err)
			return err
		}
	}
	commitVersion, err := x.Commit()
	if err != nil {
		err = fmt.Errorf("core: committing improvement plan: %w", err)
		e.recordApplyRollback(p, err)
		return err
	}
	e.recordAudit(AuditEvent{
		Kind: AuditApply, User: p.user, Purpose: p.purpose,
		Cost: p.plan.Cost, Increments: p.Increments(),
		ReadVersion: p.readVersion, CommitVersion: commitVersion,
	})
	if e.metrics != nil {
		e.metrics.Counter("engine.applied").Inc()
		// The histogram's running sum is the cumulative improvement
		// spend, mirroring AuditLog.TotalImprovementSpend.
		e.metrics.Histogram("engine.apply.cost", obs.CostBuckets).Observe(p.plan.Cost)
	}
	return nil
}

// recordApplyRollback journals a failed, rolled-back apply.
func (e *Engine) recordApplyRollback(p *Proposal, cause error) {
	e.recordAudit(AuditEvent{
		Kind: AuditRollback, User: p.user, Purpose: p.purpose,
		Cost: p.plan.Cost, ReadVersion: p.readVersion,
		Detail: cause.Error(),
	})
	e.metrics.Counter("engine.apply.rollbacks").Inc()
}

// EvaluateMulti implements the paper's multi-query extension
// (Section 4, last paragraph): several queries issued in a short period
// share one improvement plan. The search space is the union of the
// queries' base tuples; a combined plan must cover every query's need.
// Queries are planned sequentially against the accumulating confidence
// assignment (the divide-and-conquer combination idea), and each
// response's proposal is replaced by a shared one attached to every
// response that needed improvement.
func (e *Engine) EvaluateMulti(reqs []Request) ([]*Response, *Proposal, error) {
	return e.EvaluateMultiContext(context.Background(), reqs)
}

// EvaluateMultiContext is EvaluateMulti under a context: cancellation
// bounds both the per-query evaluations and the shared planning solve.
// A shared solve cut short by the context degrades to no shared plan
// (the individual responses stand alone), mirroring EvaluateContext.
func (e *Engine) EvaluateMultiContext(ctx context.Context, reqs []Request) ([]*Response, *Proposal, error) {
	resps := make([]*Response, len(reqs))
	// First pass: evaluate all queries without improvement planning.
	for i, req := range reqs {
		r := req
		r.MinFraction = 0
		resp, err := e.EvaluateContext(ctx, r)
		if err != nil {
			return nil, nil, fmt.Errorf("core: query %d: %w", i, err)
		}
		resps[i] = resp
	}

	// Build a combined instance: every query contributes its withheld
	// monotone rows, and carries its own need; the combined need is the
	// sum, with the constraint expressed by solving sequentially. One
	// snapshot pins the starting confidences of every block.
	snap := e.catalog.Snapshot()
	defer snap.Release()
	combined := &strategy.Instance{Delta: 0.1}
	seen := map[lineage.Var]int{}
	var maxBeta float64
	var blocks []queryBlock
	for i, req := range reqs {
		resp := resps[i]
		if !resp.PolicyApplied || req.MinFraction <= 0 {
			continue
		}
		need := resp.Need(req)
		if need == 0 {
			continue
		}
		if resp.Threshold > maxBeta {
			maxBeta = resp.Threshold
		}
		first := len(combined.Results)
		n := 0
		for _, row := range resp.Withheld {
			if !row.Tuple.Lineage.Monotone() {
				continue
			}
			for _, v := range row.Tuple.Lineage.Vars() {
				if _, ok := seen[v]; ok {
					continue
				}
				base, ok := snap.BaseTupleByVar(v)
				if !ok {
					return nil, nil, fmt.Errorf("core: lineage references unknown base tuple %d", int(v))
				}
				bt := strategy.BaseTuple{Var: v, P: base.Confidence, MaxP: base.MaxConf, Cost: base.Cost}
				if bt.Cost == nil || base.Confidence >= base.MaxConf {
					bt.MaxP = base.Confidence
					//lint:allow confrange exact zero-value probe (see propose):
					// MaxP==0 is strategy's "unset" sentinel.
					if bt.MaxP == 0 {
						bt.MaxP = 1e-12
					}
					bt.Cost = cost.Linear{Rate: 0}
				}
				seen[v] = len(combined.Base)
				combined.Base = append(combined.Base, bt)
			}
			combined.Results = append(combined.Results, strategy.Result{
				ID:      len(combined.Results),
				Formula: row.Tuple.Lineage,
			})
			n++
		}
		if need > n {
			need = n
		}
		if need > 0 {
			blocks = append(blocks, queryBlock{first: first, count: n, need: need})
		}
	}
	if len(blocks) == 0 {
		return resps, nil, nil
	}
	// The per-query needs become one instance whose Need is the sum;
	// the per-block minimums are enforced by post-checking and, if a
	// block falls short, topping it up with a block-local solve that
	// starts from the combined plan (mirrors the paper's "check whether
	// a solution is found for all queries").
	combined.Beta = maxBeta + betaMargin
	totalNeed := 0
	for _, b := range blocks {
		totalNeed += b.need
	}
	combined.Need = totalNeed
	// The shared solve gets its own root span (there is no single
	// response to hang it on); solver and per-group child spans attach
	// through the context, and an attached tracer retains the tree.
	shared := e.startSpan("strategy-shared")
	shared.SetAttr("queries", int64(len(blocks)))
	shared.SetAttr("need", int64(totalNeed))
	sctx := obs.ContextWithSpan(ctx, shared)
	// The shared solve serves every query at once; give it the most
	// permissive budget across the participating requests.
	budget := combinedBudget(reqs)
	e.metrics.Gauge("engine.solver.workers").Set(int64(strategy.EffectiveWorkers(e.solver, budget)))
	plan, err := strategy.SolveContext(sctx, e.solver, combined, budget)
	if err != nil && isDegradation(err) {
		// The shared solve was cut short by the deadline, a budget, or a
		// recovered solver fault. That is a reviewable policy decision:
		// mark every response that wanted improvement as degraded and
		// journal the event — whether or not an anytime incumbent
		// survives to become a partial shared proposal below.
		shared.SetStatus(err.Error())
		for i := range resps {
			if resps[i].PolicyApplied && resps[i].Need(reqs[i]) > 0 {
				resps[i].Degraded = err
				e.metrics.Counter("engine.degraded").Inc()
			}
		}
		user, purpose, query := multiAuditKey(reqs, resps)
		e.recordAudit(AuditEvent{
			Kind: AuditDegrade, User: user, Purpose: purpose, Query: query,
			Beta: combined.Beta, Partial: plan != nil, Detail: err.Error(),
		})
	}
	if plan == nil || (err != nil && !isDegradation(err)) {
		shared.End()
		return resps, nil, nil // no feasible shared plan; responses stand alone
	}
	plan = topUpBlocks(sctx, e, combined, plan, blocks, budget)
	shared.End()
	prop := &Proposal{
		instance: combined, plan: plan, solver: e.solver.Name(),
		partial: plan.Partial, readVersion: snap.Version(),
	}
	for i := range resps {
		if resps[i].PolicyApplied && resps[i].Need(reqs[i]) > 0 {
			resps[i].Proposal = prop
			if prop.user == "" {
				prop.user, prop.purpose = reqs[i].User, reqs[i].Purpose
			}
		}
	}
	e.recordAudit(AuditEvent{
		Kind: AuditPropose, User: prop.user, Purpose: prop.purpose,
		Beta: combined.Beta, Cost: plan.Cost,
		Increments: prop.Increments(), Partial: prop.partial,
	})
	if e.metrics != nil {
		e.metrics.Counter("engine.proposals").Inc()
		if prop.partial {
			e.metrics.Counter("engine.proposals.partial").Inc()
		}
		e.metrics.Histogram("engine.proposal.cost", obs.CostBuckets).Observe(plan.Cost)
	}
	return resps, prop, nil
}

// combinedBudget merges the participating requests' solver budgets for
// a shared multi-query solve: the widest worker pool any request asked
// for, and for each work counter the most permissive bound — any
// request with an unlimited counter (0) makes the shared counter
// unlimited, otherwise the largest allowance wins. The shared solve
// serves every query at once, so the tightest session must not starve
// its peers' planning.
func combinedBudget(reqs []Request) strategy.Budget {
	var b strategy.Budget
	for i, req := range reqs {
		if req.Workers > b.Workers {
			b.Workers = req.Workers
		}
		b.MaxNodes = mergeLimit(b.MaxNodes, req.MaxNodes, i == 0)
		b.MaxPivots = mergeLimit(b.MaxPivots, req.MaxPivots, i == 0)
		b.MaxSteps = mergeLimit(b.MaxSteps, req.MaxSteps, i == 0)
	}
	return b
}

// mergeLimit folds one request's work-counter bound into the running
// shared bound: 0 means unlimited and absorbs everything.
func mergeLimit(acc, next int, first bool) int {
	if first {
		return next
	}
	if acc == 0 || next == 0 {
		return 0
	}
	if next > acc {
		return next
	}
	return acc
}

// multiAuditKey picks the audit identity for a multi-query event: the
// first request whose response wanted improvement.
func multiAuditKey(reqs []Request, resps []*Response) (user, purpose, query string) {
	for i := range resps {
		if resps[i].PolicyApplied && resps[i].Need(reqs[i]) > 0 {
			return reqs[i].User, reqs[i].Purpose, reqs[i].Query
		}
	}
	if len(reqs) > 0 {
		return reqs[0].User, reqs[0].Purpose, reqs[0].Query
	}
	return "", "", ""
}

// queryBlock identifies one query's slice of the combined instance's
// results and its individual requirement.
type queryBlock struct{ first, count, need int }

// topUpBlocks ensures every query block meets its own need under the
// combined plan; blocks that fall short are re-solved locally starting
// from the combined confidences, then merged (max per tuple).
func topUpBlocks(ctx context.Context, e *Engine, combined *strategy.Instance, plan *strategy.Plan, blocks []queryBlock, budget strategy.Budget) *strategy.Plan {
	assign := func(p []float64) lineage.Assignment {
		idx := map[lineage.Var]int{}
		for i, b := range combined.Base {
			idx[b.Var] = i
		}
		return lineage.FuncAssignment(func(v lineage.Var) float64 { return p[idx[v]] })
	}
	newP := append([]float64{}, plan.NewP...)
	partial := plan.Partial
	for _, blk := range blocks {
		sat := 0
		a := assign(newP)
		for ri := blk.first; ri < blk.first+blk.count; ri++ {
			if conf.GE(lineage.Prob(combined.Results[ri].Formula, a), combined.Beta) {
				sat++
			}
		}
		if sat >= blk.need {
			continue
		}
		// Local solve from the combined state.
		sub := &strategy.Instance{Beta: combined.Beta, Delta: combined.Delta, Need: blk.need}
		mapping := []int{}
		seen := map[lineage.Var]bool{}
		for ri := blk.first; ri < blk.first+blk.count; ri++ {
			sub.Results = append(sub.Results, combined.Results[ri])
			for _, v := range combined.Results[ri].Formula.Vars() {
				if seen[v] {
					continue
				}
				seen[v] = true
				for bi, b := range combined.Base {
					if b.Var == v {
						nb := b
						nb.P = newP[bi]
						sub.Base = append(sub.Base, nb)
						mapping = append(mapping, bi)
					}
				}
			}
		}
		// A block solve cut short may still carry an anytime incumbent:
		// salvage it (the merged plan only improves) and record that the
		// result is partial, instead of discarding it with the error.
		sp, err := strategy.SolveContext(ctx, e.solver, sub, budget)
		if sp != nil {
			if err != nil || sp.Partial {
				partial = true
			}
			for si, bi := range mapping {
				if sp.NewP[si] > newP[bi] {
					newP[bi] = sp.NewP[si]
				}
			}
		}
	}
	total := 0.0
	for i, b := range combined.Base {
		total += b.Cost.Increment(b.P, newP[i])
	}
	out := &strategy.Plan{NewP: newP, Cost: total, Nodes: plan.Nodes, Partial: partial, Degraded: plan.Degraded}
	a := assign(newP)
	for ri, r := range combined.Results {
		if conf.GE(lineage.Prob(r.Formula, a), combined.Beta) {
			out.Satisfied = append(out.Satisfied, ri)
		}
	}
	return out
}
