package core

import (
	"testing"

	"pcqe/internal/cost"
	"pcqe/internal/policy"
	"pcqe/internal/relation"
)

// overlapEngine builds a database where two queries depend on disjoint
// result sets over overlapping base tuples, forcing the multi-query
// planner's per-block top-up logic to run.
func overlapEngine(t *testing.T) *Engine {
	t.Helper()
	c := relation.NewCatalog()
	items, err := c.CreateTable("Items", relation.NewSchema(
		relation.Column{Name: "Kind", Type: relation.TypeString},
		relation.Column{Name: "V", Type: relation.TypeInt},
	))
	if err != nil {
		t.Fatal(err)
	}
	// Several low-confidence rows of two kinds.
	for i := 0; i < 4; i++ {
		items.MustInsert(0.2, cost.Linear{Rate: 10 * float64(i+1)},
			relation.String_("a"), relation.Int(int64(i)))
	}
	for i := 0; i < 4; i++ {
		items.MustInsert(0.25, cost.Linear{Rate: 5 * float64(i+1)},
			relation.String_("b"), relation.Int(int64(i)))
	}
	rbac := policy.NewRBAC()
	rbac.AddRole("r")
	if err := rbac.AssignUser("u", "r"); err != nil {
		t.Fatal(err)
	}
	purposes := policy.NewPurposeTree()
	if err := purposes.Add("p", ""); err != nil {
		t.Fatal(err)
	}
	store := policy.NewStore(rbac, purposes)
	if err := store.Add(policy.ConfidencePolicy{Role: "r", Purpose: "p", Beta: 0.5}); err != nil {
		t.Fatal(err)
	}
	return NewEngine(c, store, nil)
}

func TestEvaluateMultiTopUpCoversEveryBlock(t *testing.T) {
	e := overlapEngine(t)
	reqs := []Request{
		{User: "u", Purpose: "p", MinFraction: 0.5,
			Query: `SELECT V FROM Items WHERE Kind = 'a'`},
		{User: "u", Purpose: "p", MinFraction: 0.75,
			Query: `SELECT V FROM Items WHERE Kind = 'b'`},
	}
	resps, prop, err := e.EvaluateMulti(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if prop == nil {
		t.Fatal("expected a shared plan")
	}
	if err := e.Apply(prop); err != nil {
		t.Fatal(err)
	}
	for i, req := range reqs {
		resp, err := e.Evaluate(req)
		if err != nil {
			t.Fatal(err)
		}
		if got := resp.Need(req); got != 0 {
			t.Errorf("query %d still short %d rows (was released=%d withheld=%d)",
				i, got, len(resps[i].Released), len(resps[i].Withheld))
		}
	}
}

func TestEvaluateMultiInfeasibleSharedPlan(t *testing.T) {
	e := overlapEngine(t)
	// Freeze everything: no shared plan can exist.
	items, _ := e.Catalog().Table("Items")
	for _, row := range items.Rows() {
		row.Cost = nil
	}
	reqs := []Request{
		{User: "u", Purpose: "p", MinFraction: 1.0, Query: `SELECT V FROM Items WHERE Kind = 'a'`},
	}
	resps, prop, err := e.EvaluateMulti(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if prop != nil {
		t.Fatal("frozen database cannot have a plan")
	}
	if len(resps) != 1 {
		t.Fatalf("responses = %d", len(resps))
	}
}

func TestEvaluateMultiPropagatesQueryErrors(t *testing.T) {
	e := overlapEngine(t)
	_, _, err := e.EvaluateMulti([]Request{
		{User: "u", Purpose: "p", Query: `SELECT nope FROM Items`},
	})
	if err == nil {
		t.Fatal("bad query should surface")
	}
}

func TestExceptLineageSkippedInPlanning(t *testing.T) {
	e := overlapEngine(t)
	req := Request{
		User: "u", Purpose: "p", MinFraction: 1.0,
		// EXCEPT produces left ∧ ¬right lineage for rows present on both
		// sides; with disjoint V values per kind all 4 'a' rows survive
		// structurally, but rows matched on both sides carry negation.
		Query: `SELECT V FROM Items WHERE Kind = 'a'
			EXCEPT
			SELECT V FROM Items WHERE Kind = 'b' AND V > 1`,
	}
	resp, err := e.Evaluate(req)
	if err != nil {
		t.Fatal(err)
	}
	// All rows are withheld (confidences ≤ 0.2 < 0.5); rows with negated
	// lineage must be excluded from the optimization and counted.
	if resp.Proposal == nil {
		t.Fatal("the monotone rows should still get a plan")
	}
	if resp.Proposal.Skipped() != 2 {
		t.Fatalf("skipped = %d, want 2 (V=2 and V=3 carry ¬b lineage)", resp.Proposal.Skipped())
	}
	if err := e.Apply(resp.Proposal); err != nil {
		t.Fatal(err)
	}
	after, err := e.Evaluate(Request{User: "u", Purpose: "p",
		Query: `SELECT V FROM Items WHERE Kind = 'a' EXCEPT SELECT V FROM Items WHERE Kind = 'b' AND V > 1`})
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Released) < 2 {
		t.Fatalf("after improvement released = %d, want ≥ 2", len(after.Released))
	}
	// Confidence arithmetic sanity: released rows clear β strictly.
	for _, row := range after.Released {
		if !(row.Confidence > 0.5) {
			t.Fatalf("released row at %v", row.Confidence)
		}
	}
}
