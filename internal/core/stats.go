package core

import "pcqe/internal/conf"

// Stats summarizes the confidence distribution of a response — the "how
// trustworthy is this result set" overview a UI would chart next to the
// table. Stats aggregates released rows only; withheld rows contribute
// just their count. FullStats folds withheld confidences in for trusted
// operator surfaces.
type Stats struct {
	Total    int
	Released int
	Withheld int
	// Min, Max and Mean confidence over the aggregated rows (0 when no
	// rows are aggregated).
	Min, Max, Mean float64
	// Histogram buckets confidences into deciles: bucket i counts rows
	// with confidence in [i/10, (i+1)/10), except the last bucket which
	// includes 1.0.
	Histogram [10]int
}

// Stats computes the response's confidence summary over the released
// rows. Withheld rows appear only as a count: their confidences are
// exactly what the policy filter held back, and folding them into
// min/max/mean would leak a below-threshold confidence to whoever reads
// the summary (with one withheld row, Max *is* its confidence).
func (r *Response) Stats() Stats {
	s := Stats{
		Released: len(r.Released),
		Withheld: len(r.Withheld),
	}
	s.Total = s.Released + s.Withheld
	if s.Released == 0 {
		return s
	}
	s.aggregate(r.Released, s.Released)
	return s
}

// FullStats computes the summary over released and withheld rows alike.
// It exists for trusted positions — operator dashboards, audit tooling —
// that legitimately inspect what the filter suppressed; anything
// user-facing wants Stats.
func (r *Response) FullStats() Stats {
	s := Stats{
		Released: len(r.Released),
		Withheld: len(r.Withheld),
	}
	s.Total = s.Released + s.Withheld
	if s.Total == 0 {
		return s
	}
	//lint:allow policyflow trusted operator/audit surface: aggregating withheld confidences is this function's documented contract
	s.aggregate(append(append([]Row{}, r.Released...), r.Withheld...), s.Total)
	return s
}

// aggregate folds rows into Min/Max/Mean/Histogram; n is the row count
// the mean divides by.
func (s *Stats) aggregate(rows []Row, n int) {
	s.Min = 2
	sum := 0.0
	for _, row := range rows {
		p := row.Confidence
		sum += p
		if p < s.Min {
			s.Min = p
		}
		if p > s.Max {
			s.Max = p
		}
		// int(p*10) alone misbuckets confidences an ulp below a
		// decile boundary (e.g. 0.7 stored as 0.69999…97 would land
		// in bucket 6): treat values within conf.Eps of the next
		// boundary as belonging to the higher decile.
		b := int(p * 10)
		if b < 9 && conf.GE(p, float64(b+1)/10) {
			b++
		}
		if b > 9 {
			b = 9
		}
		if b < 0 {
			b = 0
		}
		s.Histogram[b]++
	}
	s.Mean = sum / float64(n)
}
