package core

import "pcqe/internal/conf"

// Stats summarizes the confidence distribution of a response across both
// released and withheld rows — the "how trustworthy is this result set"
// overview a UI would chart next to the table.
type Stats struct {
	Total    int
	Released int
	Withheld int
	// Min, Max and Mean confidence over all rows (0 when Total == 0).
	Min, Max, Mean float64
	// Histogram buckets confidences into deciles: bucket i counts rows
	// with confidence in [i/10, (i+1)/10), except the last bucket which
	// includes 1.0.
	Histogram [10]int
}

// Stats computes the response's confidence summary.
func (r *Response) Stats() Stats {
	s := Stats{
		Released: len(r.Released),
		Withheld: len(r.Withheld),
	}
	s.Total = s.Released + s.Withheld
	if s.Total == 0 {
		return s
	}
	s.Min = 2
	sum := 0.0
	count := func(rows []Row) {
		for _, row := range rows {
			p := row.Confidence
			sum += p
			if p < s.Min {
				s.Min = p
			}
			if p > s.Max {
				s.Max = p
			}
			// int(p*10) alone misbuckets confidences an ulp below a
			// decile boundary (e.g. 0.7 stored as 0.69999…97 would land
			// in bucket 6): treat values within conf.Eps of the next
			// boundary as belonging to the higher decile.
			b := int(p * 10)
			if b < 9 && conf.GE(p, float64(b+1)/10) {
				b++
			}
			if b > 9 {
				b = 9
			}
			if b < 0 {
				b = 0
			}
			s.Histogram[b]++
		}
	}
	count(r.Released)
	count(r.Withheld)
	s.Mean = sum / float64(s.Total)
	return s
}
