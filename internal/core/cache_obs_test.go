package core

import (
	"strings"
	"testing"

	"pcqe/internal/obs"
)

// TestEngineCacheObservability checks the optimizer caches surface
// through the engine: plan-cache and confidence-cache deltas on the
// request span tree, lineage-class row totals, and the mirrored
// metrics counters.
func TestEngineCacheObservability(t *testing.T) {
	e := newVentureEngine(t, nil)
	m := obs.New()
	e.SetMetrics(m)
	req := Request{User: "sue", Query: ventureQuery, Purpose: "analysis"}

	first, err := e.Evaluate(req)
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.Evaluate(req)
	if err != nil {
		t.Fatal(err)
	}

	eval1 := first.Timings.Find("eval")
	if eval1.Attr("plan_cache_misses") != 1 || eval1.Attr("plan_cache_hits") != 0 {
		t.Errorf("first eval: hits=%d misses=%d, want 0/1",
			eval1.Attr("plan_cache_hits"), eval1.Attr("plan_cache_misses"))
	}
	eval2 := second.Timings.Find("eval")
	if eval2.Attr("plan_cache_hits") != 1 || eval2.Attr("plan_cache_misses") != 0 {
		t.Errorf("second eval: hits=%d misses=%d, want 1/0",
			eval2.Attr("plan_cache_hits"), eval2.Attr("plan_cache_misses"))
	}
	// The running example joins and filters but never references
	// _confidence, so the cost-based planner owns it; DISTINCT means
	// the lineage hint is may-share.
	if eval2.Attr("cost_based") != 1 {
		t.Errorf("running example should be cost-based planned")
	}
	if eval2.Attr("lineage_hint_read_once") != 0 {
		t.Errorf("DISTINCT query must carry the may-share hint")
	}

	lin1 := first.Timings.Find("lineage")
	if lin1 == nil {
		t.Fatalf("no lineage span:\n%s", first.Timings.Tree())
	}
	rows := lin1.Attr("rows")
	if rows == 0 {
		t.Fatal("lineage span must count rows")
	}
	// Every lineage class total must reconcile with the row count.
	classed := lin1.Attr("readonce_rows") + lin1.Attr("bounded_rows") + lin1.Attr("hard_rows")
	if classed != rows {
		t.Errorf("class totals %d != rows %d", classed, rows)
	}
	// DISTINCT merges ZStart's two join rows into one result whose
	// lineage Or(And(02,13), And(03,13)) shares variable 13: the row
	// routes through the bounded-pivot Shannon path.
	if lin1.Attr("bounded_rows") != rows {
		t.Errorf("bounded_rows = %d, want %d", lin1.Attr("bounded_rows"), rows)
	}
	if lin1.Attr("bounded_pivots") == 0 {
		t.Error("shared formula must record its Shannon pivots")
	}
	if lin1.Attr("conf_cache_misses") == 0 {
		t.Error("first request must miss the confidence cache")
	}
	lin2 := second.Timings.Find("lineage")
	if lin2.Attr("conf_cache_hits") != rows || lin2.Attr("conf_cache_misses") != 0 {
		t.Errorf("second request: conf hits=%d misses=%d, want %d/0",
			lin2.Attr("conf_cache_hits"), lin2.Attr("conf_cache_misses"), rows)
	}

	snap := m.Snapshot().String()
	for _, metric := range []string{"sql.plancache.hits 1", "sql.plancache.misses 1", "engine.confcache.hits"} {
		if !strings.Contains(snap, metric) {
			t.Errorf("metrics snapshot missing %q:\n%s", metric, snap)
		}
	}

	if h, ms := e.PlanCacheStats(); h != 1 || ms != 1 {
		t.Errorf("PlanCacheStats = %d/%d, want 1/1", h, ms)
	}
	cc := e.ConfCacheStats()
	if cc.Hits != rows || cc.Misses != rows {
		t.Errorf("ConfCacheStats = %+v, want %d hits and misses", cc, rows)
	}
}

// TestEngineConfidenceCacheFollowsImprovement: applying an improvement
// plan raises base confidences; the next evaluation must see the new
// result confidence, not a cached pre-improvement value.
func TestEngineConfidenceCacheFollowsImprovement(t *testing.T) {
	e := newVentureEngine(t, nil)
	req := Request{User: "mark", Query: ventureQuery, Purpose: "investment", MinFraction: 1.0}
	resp, err := e.Evaluate(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Proposal == nil || len(resp.Released) != 0 {
		t.Fatalf("expected a blocked result with a proposal, got %+v", resp)
	}
	withheld := resp.Withheld[0].Confidence
	if err := e.Apply(resp.Proposal); err != nil {
		t.Fatal(err)
	}
	after, err := e.Evaluate(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Released) != 1 {
		t.Fatalf("post-apply: released=%d, want 1", len(after.Released))
	}
	if after.Released[0].Confidence <= withheld {
		t.Errorf("confidence %v not raised above pre-apply %v (stale cache?)",
			after.Released[0].Confidence, withheld)
	}
}
