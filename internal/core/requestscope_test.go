package core

// Regression tests for request-scoped engine behavior under concurrent
// sessions (the pcqed server shares ONE engine): solver budgets arrive
// per request instead of per process, span attributes charge a request
// with its own cache work only, and a canceled context (a disconnected
// client) stops the lineage phase instead of riding it to completion.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"pcqe/internal/fault"
	"pcqe/internal/strategy"
)

func TestRequestSolverBudgetValidation(t *testing.T) {
	e := newVentureEngine(t, nil)
	for _, req := range []Request{
		{User: "sue", Query: ventureQuery, Purpose: "analysis", MaxNodes: -1},
		{User: "sue", Query: ventureQuery, Purpose: "analysis", MaxPivots: -2},
		{User: "sue", Query: ventureQuery, Purpose: "analysis", MaxSteps: -3},
	} {
		if _, err := e.Evaluate(req); err == nil {
			t.Fatalf("negative solver budget %+v accepted", req)
		}
	}
}

// TestRequestSolverBudgetThreadsToSolver pins that Request.MaxSteps
// reaches the strategy layer: a one-step allowance cannot complete the
// venture improvement plan, so the response must degrade with a typed
// *strategy.BudgetExceededError naming the steps resource.
func TestRequestSolverBudgetThreadsToSolver(t *testing.T) {
	e := newVentureEngine(t, nil)
	req := Request{
		User: "mark", Query: ventureQuery, Purpose: "investment",
		MinFraction: 1.0, MaxSteps: 1,
	}
	resp, err := e.Evaluate(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Degraded == nil {
		t.Fatal("MaxSteps=1 did not degrade improvement planning; request budget not threaded to the solver")
	}
	var bx *strategy.BudgetExceededError
	if !errors.As(resp.Degraded, &bx) {
		t.Fatalf("Degraded = %v, want *strategy.BudgetExceededError", resp.Degraded)
	}
	if bx.Resource != strategy.ResourceSteps {
		t.Fatalf("exhausted resource = %q, want %q", bx.Resource, strategy.ResourceSteps)
	}
	// An unbudgeted request on the same engine still solves in full:
	// the budget is request state, not engine state.
	resp, err = e.Evaluate(Request{User: "mark", Query: ventureQuery, Purpose: "investment", MinFraction: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Degraded != nil || resp.Proposal == nil {
		t.Fatalf("unbudgeted follow-up degraded=%v proposal=%v", resp.Degraded, resp.Proposal)
	}
}

// TestSpanAttrsAreRequestScoped runs many identical evaluations
// concurrently against one engine and asserts every response's span
// attributes account for exactly that request's cache activity. Before
// the per-call attribution fix the engine computed these attributes as
// before/after deltas of the process-wide cache counters, so one
// request's span absorbed every concurrent session's hits and pivots.
func TestSpanAttrsAreRequestScoped(t *testing.T) {
	e := newVentureEngine(t, nil)
	const goroutines = 16
	const rounds = 8
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				resp, err := e.Evaluate(Request{User: "sue", Query: ventureQuery, Purpose: "analysis"})
				if err != nil {
					errCh <- err
					return
				}
				eval := resp.Timings.Find("eval")
				if got := eval.Attr("plan_cache_hits") + eval.Attr("plan_cache_misses"); got != 1 {
					errCh <- fmt.Errorf("plan cache attribution: hits+misses = %d, want exactly 1 per request", got)
					return
				}
				lin := resp.Timings.Find("lineage")
				rows := lin.Attr("rows")
				if got := lin.Attr("conf_cache_hits") + lin.Attr("conf_cache_misses"); got != rows {
					errCh <- fmt.Errorf("conf cache attribution: hits+misses = %d, want rows = %d", got, rows)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}

// TestLineagePhaseHonorsCancellation pins the disconnected-client
// contract: a context canceled while the engine is computing result
// confidences must abort the request with the context error instead of
// finishing the #P-hard lineage phase for a caller that is gone.
func TestLineagePhaseHonorsCancellation(t *testing.T) {
	e := newVentureEngine(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer fault.Reset()
	fault.Register("core.lineage.row", func() { cancel() })
	fault.Enable()
	resp, err := e.EvaluateContext(ctx, Request{User: "sue", Query: ventureQuery, Purpose: "analysis"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if resp != nil {
		t.Fatalf("canceled lineage phase still produced a response: %v", resp)
	}
}

func TestAuditEventKindJSONRoundTrip(t *testing.T) {
	for k := AuditEvaluate; k <= AuditRollback; k++ {
		data, err := json.Marshal(k)
		if err != nil {
			t.Fatal(err)
		}
		if want := `"` + k.String() + `"`; string(data) != want {
			t.Fatalf("marshal %v = %s, want %s", k, data, want)
		}
		var back AuditEventKind
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back != k {
			t.Fatalf("round trip %v → %v", k, back)
		}
	}
	if _, err := json.Marshal(AuditEventKind(99)); err == nil {
		t.Fatal("unknown kind marshaled without error")
	}
	var k AuditEventKind
	if err := json.Unmarshal([]byte(`"no-such-kind"`), &k); err == nil {
		t.Fatal("unknown kind name unmarshaled without error")
	}
	// A journaled event round-trips with its kind readable by name, not
	// as a bare iota ordinal.
	ev := AuditEvent{Seq: 7, Kind: AuditDegrade, User: "mark", Detail: "deadline"}
	data, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"Kind":"degrade"`) {
		t.Fatalf("event JSON carries no kind name: %s", data)
	}
	var back AuditEvent
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Kind != AuditDegrade || back.Seq != 7 {
		t.Fatalf("round trip = %+v", back)
	}
}
