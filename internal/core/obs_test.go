package core

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"pcqe/internal/obs"
	"pcqe/internal/relation"
	"pcqe/internal/strategy"
)

// TestObservabilityEndToEnd runs the paper's running example with a
// metrics registry, a tracer and an audit journal attached, and checks
// the three surfaces agree: the span tree covers every phase, the
// per-kind audit counters match the journal, and the apply-cost
// histogram mirrors the improvement spend.
func TestObservabilityEndToEnd(t *testing.T) {
	e := newVentureEngine(t, nil)
	log := &AuditLog{}
	e.SetAudit(log)
	m := obs.New()
	e.SetMetrics(m)
	tr := obs.NewRingTracer(8)
	e.SetTracer(tr)

	start := time.Now()
	resp, err := e.Evaluate(blockedReq)
	wall := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Proposal == nil {
		t.Fatal("running example must yield a proposal")
	}

	root := resp.Timings
	if root == nil || !root.Ended() {
		t.Fatalf("Timings must be a completed span tree, got %v", root)
	}
	for _, phase := range []string{"eval", "lineage", "policy-filter", "strategy"} {
		if root.Find(phase) == nil {
			t.Errorf("span tree missing phase %q:\n%s", phase, root.Tree())
		}
	}
	// The solver boundary hangs its span (with work counters) off the
	// strategy phase via the context.
	solve := root.Find("solve:" + e.solver.Name())
	if solve == nil {
		t.Fatalf("span tree missing the solver span:\n%s", root.Tree())
	}
	if root.Find("strategy").Find("solve:"+e.solver.Name()) == nil {
		t.Errorf("solver span must nest under the strategy phase:\n%s", root.Tree())
	}
	if root.Find("partition") == nil || root.Find("group") == nil {
		t.Errorf("divide-and-conquer must report partition and group spans:\n%s", root.Tree())
	}
	// Phase durations are disjoint sub-intervals of the request: their
	// sum cannot exceed the root, and the root cannot exceed the
	// measured wall time around the call.
	var sum time.Duration
	for _, c := range root.Children() {
		if !c.Ended() {
			t.Errorf("phase %q left in flight", c.Name())
		}
		sum += c.Duration()
	}
	if sum == 0 || sum > root.Duration() {
		t.Errorf("phase durations sum to %v, root is %v", sum, root.Duration())
	}
	if root.Duration() > wall {
		t.Errorf("root span %v exceeds measured wall time %v", root.Duration(), wall)
	}
	// The tracer retained the same tree.
	if tr.Total() != 1 || len(tr.Spans()) != 1 || tr.Spans()[0] != root {
		t.Errorf("tracer retained %d spans (total %d)", len(tr.Spans()), tr.Total())
	}

	if err := e.Apply(resp.Proposal); err != nil {
		t.Fatal(err)
	}

	snap := m.Snapshot()
	if got := snap.Counters["engine.queries"]; got != 1 {
		t.Errorf("engine.queries = %d, want 1", got)
	}
	if got := snap.Counters["engine.rows.released"]; got != int64(len(resp.Released)) {
		t.Errorf("engine.rows.released = %d, want %d", got, len(resp.Released))
	}
	if got := snap.Counters["engine.rows.withheld"]; got != int64(len(resp.Withheld)) {
		t.Errorf("engine.rows.withheld = %d, want %d", got, len(resp.Withheld))
	}
	if got := snap.Counters["engine.proposals"]; got != 1 {
		t.Errorf("engine.proposals = %d, want 1", got)
	}
	if got := snap.Counters["engine.applied"]; got != 1 {
		t.Errorf("engine.applied = %d, want 1", got)
	}
	if h := snap.Histograms["engine.request.seconds"]; h.Count != 1 {
		t.Errorf("engine.request.seconds count = %d, want 1", h.Count)
	}
	// Audit counters mirror the journal event for event.
	for _, kind := range []AuditEventKind{AuditEvaluate, AuditPropose, AuditApply, AuditDegrade} {
		want := int64(len(log.ByKind(kind)))
		if got := snap.Counters["engine.audit."+kind.String()]; got != want {
			t.Errorf("engine.audit.%s = %d, journal has %d", kind, got, want)
		}
	}
	// The apply-cost histogram's running sum is the improvement bill.
	if h := snap.Histograms["engine.apply.cost"]; math.Abs(h.Sum-log.TotalImprovementSpend()) > 1e-9 {
		t.Errorf("engine.apply.cost sum = %g, spend = %g", h.Sum, log.TotalImprovementSpend())
	}
}

// TestTimingsWithoutTracer pins the zero-configuration contract:
// Response.Timings is populated even when no tracer (and no metrics
// registry) is attached.
func TestTimingsWithoutTracer(t *testing.T) {
	e := newVentureEngine(t, nil)
	resp, err := e.Evaluate(Request{User: "sue", Query: ventureQuery, Purpose: "analysis"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Timings == nil || resp.Timings.Find("eval") == nil {
		t.Fatalf("Timings must be populated without a tracer, got %v", resp.Timings)
	}
	if resp.Timings.Find("strategy") != nil {
		t.Error("no improvement planning was requested; no strategy span expected")
	}
}

// TestDegradeMetrics scripts a budget-exhausted solver and checks the
// degradation is visible on all three surfaces: Response.Degraded, the
// audit journal, and the metrics counters.
func TestDegradeMetrics(t *testing.T) {
	budgetErr := &strategy.BudgetExceededError{Solver: "stub", Resource: strategy.ResourceDeadline}
	e := newVentureEngine(t, &stubSolver{
		solve: func(context.Context, *strategy.Instance) (*strategy.Plan, error) {
			return nil, budgetErr
		},
	})
	log := &AuditLog{}
	e.SetAudit(log)
	m := obs.New()
	e.SetMetrics(m)

	resp, err := e.Evaluate(blockedReq)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Degraded == nil {
		t.Fatal("stubbed budget error must degrade the response")
	}
	snap := m.Snapshot()
	if got := snap.Counters["engine.degraded"]; got != 1 {
		t.Errorf("engine.degraded = %d, want 1", got)
	}
	if got, want := snap.Counters["engine.audit.degrade"], int64(len(log.ByKind(AuditDegrade))); got != want {
		t.Errorf("engine.audit.degrade = %d, journal has %d", got, want)
	}
	if got := snap.Counters["engine.proposals"]; got != 0 {
		t.Errorf("engine.proposals = %d, want 0 (no incumbent)", got)
	}
	if status := resp.Timings.Find("strategy").Status(); status == "" {
		t.Errorf("strategy span must carry the degradation cause:\n%s", resp.Timings.Tree())
	}
}

// TestAuditLogConcurrency hammers the journal from parallel goroutines
// (run under -race) and pins that Seq stays a gap-free 1..N sequence.
func TestAuditLogConcurrency(t *testing.T) {
	log := &AuditLog{}
	const writers, perWriter = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				kind := AuditEventKind(i % 4)
				log.record(AuditEvent{Kind: kind, User: "u", Cost: 1.5})
				_ = log.Events()
				_ = log.ByKind(kind)
				_ = log.TotalImprovementSpend()
				_ = log.Len()
				_ = log.ImprovedTuples()
			}
		}(w)
	}
	wg.Wait()

	events := log.Events()
	if len(events) != writers*perWriter {
		t.Fatalf("recorded %d events, want %d", len(events), writers*perWriter)
	}
	for i, ev := range events {
		if ev.Seq != i+1 {
			t.Fatalf("event %d carries Seq %d: sequence must be gap-free and monotone", i, ev.Seq)
		}
	}
	applies := len(log.ByKind(AuditApply))
	if want := float64(applies) * 1.5; math.Abs(log.TotalImprovementSpend()-want) > 1e-9 {
		t.Fatalf("spend = %g, want %g", log.TotalImprovementSpend(), want)
	}
}

// TestSortRowsDeterministic pins the tuple-key tie-break: rows with
// equal confidence must come out in the same order regardless of the
// (operator-dependent) order they went in.
func TestSortRowsDeterministic(t *testing.T) {
	mk := func(name string, p float64) Row {
		return Row{Tuple: relation.NewTuple([]relation.Value{relation.String_(name)}, nil), Confidence: p}
	}
	a, b, c, d := mk("alpha", 0.5), mk("bravo", 0.5), mk("charlie", 0.5), mk("delta", 0.9)
	forward := []Row{d, a, b, c}
	backward := []Row{c, b, a, d}
	sortRows(forward)
	sortRows(backward)
	for i := range forward {
		if forward[i].Tuple.Key() != backward[i].Tuple.Key() {
			t.Fatalf("order differs at %d: %v vs %v", i, forward[i].Tuple, backward[i].Tuple)
		}
	}
	if forward[0].Confidence != 0.9 {
		t.Fatal("descending confidence must still dominate the tie-break")
	}
}

// TestStatsBoundaryBucketing pins the decile-boundary fix: a confidence
// an ulp below 0.7 (the kind of value repeated float arithmetic
// produces for an exact 0.7) must land in bucket 7, not bucket 6.
func TestStatsBoundaryBucketing(t *testing.T) {
	row := func(p float64) Row { return Row{Confidence: p} }
	r := &Response{Released: []Row{
		row(math.Nextafter(0.7, 0)), // 0.7 minus one ulp → bucket 7
		row(0.7),                    // exact boundary → bucket 7
		row(0.65),                   // mid-decile → bucket 6
		row(1.0),                    // top of range → bucket 9
		row(math.Nextafter(0.1, 0)), // 0.1 minus one ulp → bucket 1
	}}
	s := r.Stats()
	want := map[int]int{7: 2, 6: 1, 9: 1, 1: 1}
	for b, n := range want {
		if s.Histogram[b] != n {
			t.Fatalf("bucket %d = %d, want %d (histogram %v)", b, s.Histogram[b], n, s.Histogram)
		}
	}
}

// TestResponseStringDegraded pins that the summary line reports the
// degradation status and distinguishes partial from full proposals.
func TestResponseStringDegraded(t *testing.T) {
	budgetErr := &strategy.BudgetExceededError{Solver: "stub", Resource: strategy.ResourceSteps}
	plan := &strategy.Plan{Partial: true}
	e := newVentureEngine(t, &stubSolver{
		solve: func(_ context.Context, in *strategy.Instance) (*strategy.Plan, error) {
			plan.NewP = make([]float64, len(in.Base))
			for i, b := range in.Base {
				plan.NewP[i] = b.MaxP
			}
			return plan, budgetErr
		},
	})
	resp, err := e.Evaluate(blockedReq)
	if err != nil {
		t.Fatal(err)
	}
	got := resp.String()
	for _, want := range []string{"degraded", "partial improvement"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q, want it to mention %q", got, want)
		}
	}
}
