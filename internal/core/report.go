package core

import (
	"fmt"
	"strings"
)

// Report renders a response as an aligned text table with a confidence
// column, followed by the improvement proposal (if any) — the format the
// cmd/pcqe CLI and the examples print.
func (r *Response) Report() string { return r.report(false) }

// ReportWithLineage is Report with an extra column showing each released
// row's lineage formula over base-tuple variables (Trio-style), e.g.
// "((t2 | t3) & t13)" — the paper's Table 3 view.
func (r *Response) ReportWithLineage() string { return r.report(true) }

func (r *Response) report(lineageCol bool) string {
	var b strings.Builder
	headers := make([]string, 0, r.Schema.Len()+2)
	for _, c := range r.Schema.Columns {
		headers = append(headers, c.Name)
	}
	headers = append(headers, "confidence")
	if lineageCol {
		headers = append(headers, "lineage")
	}

	rows := make([][]string, 0, len(r.Released))
	for _, row := range r.Released {
		cells := make([]string, 0, len(headers))
		for _, v := range row.Tuple.Values {
			cells = append(cells, v.String())
		}
		cells = append(cells, fmt.Sprintf("%.4g", row.Confidence))
		if lineageCol {
			cells = append(cells, row.Tuple.Lineage.String())
		}
		rows = append(rows, cells)
	}
	writeTable(&b, headers, rows)

	if r.PolicyApplied {
		fmt.Fprintf(&b, "policy threshold β=%.4g: released %d, withheld %d\n",
			r.Threshold, len(r.Released), len(r.Withheld))
	} else {
		fmt.Fprintf(&b, "no confidence policy applied: released all %d rows\n", len(r.Released))
	}
	if r.Degraded != nil {
		fmt.Fprintf(&b, "improvement planning degraded: %v\n", r.Degraded)
	}
	if r.Proposal != nil {
		partial := ""
		if r.Proposal.Partial() {
			partial = "partial "
		}
		fmt.Fprintf(&b, "%simprovement proposal (%s, cost %.4g):\n", partial, r.Proposal.Solver(), r.Proposal.Cost())
		for _, inc := range r.Proposal.Increments() {
			fmt.Fprintf(&b, "  raise tuple t%d: %.3g → %.3g (cost %.4g)\n",
				int(inc.Var), inc.From, inc.To, inc.Cost)
		}
	}
	return b.String()
}

func writeTable(b *strings.Builder, headers []string, rows [][]string) {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		b.WriteString("\n")
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
}
