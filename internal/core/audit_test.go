package core

import (
	"strings"
	"testing"
	"time"
)

func TestAuditJournal(t *testing.T) {
	e := newVentureEngine(t, nil)
	log := &AuditLog{Clock: func() time.Time { return time.Unix(1_000_000, 0) }}
	e.SetAudit(log)
	if e.Audit() != log {
		t.Fatal("Audit() should return the attached journal")
	}

	req := Request{User: "mark", Query: ventureQuery, Purpose: "investment", MinFraction: 1.0}
	resp, err := e.Evaluate(req)
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate + Propose recorded.
	if log.Len() != 2 {
		t.Fatalf("events = %d, want 2", log.Len())
	}
	ev := log.Events()
	if ev[0].Kind != AuditEvaluate || ev[0].User != "mark" || ev[0].Withheld != 1 {
		t.Fatalf("event 0 = %+v", ev[0])
	}
	if ev[1].Kind != AuditPropose || ev[1].Cost <= 0 {
		t.Fatalf("event 1 = %+v", ev[1])
	}
	if ev[0].Seq != 1 || ev[1].Seq != 2 {
		t.Fatalf("sequence numbers: %d, %d", ev[0].Seq, ev[1].Seq)
	}
	if !ev[0].Time.Equal(time.Unix(1_000_000, 0)) {
		t.Fatal("clock override ignored")
	}

	if err := e.Apply(resp.Proposal); err != nil {
		t.Fatal(err)
	}
	applies := log.ByKind(AuditApply)
	if len(applies) != 1 {
		t.Fatalf("apply events = %d", len(applies))
	}
	if applies[0].User != "mark" || applies[0].Purpose != "investment" {
		t.Fatalf("apply attribution = %+v", applies[0])
	}
	if got := log.TotalImprovementSpend(); got != applies[0].Cost {
		t.Fatalf("spend = %v, want %v", got, applies[0].Cost)
	}
	improved := log.ImprovedTuples()
	if len(improved) != 1 {
		t.Fatalf("improved tuples = %v", improved)
	}

	// Event rendering.
	if s := ev[0].String(); !strings.Contains(s, "evaluate") || !strings.Contains(s, "withheld=1") {
		t.Errorf("event string = %q", s)
	}
	if s := applies[0].String(); !strings.Contains(s, "apply") || !strings.Contains(s, "cost=") {
		t.Errorf("apply string = %q", s)
	}
	if AuditEvaluate.String() != "evaluate" || AuditPropose.String() != "propose" || AuditApply.String() != "apply" {
		t.Error("kind names")
	}
}

func TestAuditDetachedIsSilent(t *testing.T) {
	e := newVentureEngine(t, nil)
	// No journal attached: everything still works.
	resp, err := e.Evaluate(Request{User: "mark", Query: ventureQuery, Purpose: "investment", MinFraction: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Apply(resp.Proposal); err != nil {
		t.Fatal(err)
	}
}

func TestReportWithLineage(t *testing.T) {
	e := newVentureEngine(t, nil)
	resp, err := e.Evaluate(Request{User: "sue", Query: ventureQuery, Purpose: "analysis"})
	if err != nil {
		t.Fatal(err)
	}
	rep := resp.ReportWithLineage()
	if !strings.Contains(rep, "lineage") {
		t.Fatalf("missing lineage column:\n%s", rep)
	}
	// The released row's lineage is (t2 | t3) & t4 in catalog-assigned
	// variables (paper's (p02∨p03)∧p13 shape: an OR and an AND).
	if !strings.Contains(rep, "|") || !strings.Contains(rep, "&") {
		t.Fatalf("lineage formula not rendered:\n%s", rep)
	}
	// Plain report has no lineage column.
	if strings.Contains(resp.Report(), "lineage") {
		t.Fatal("plain report should not include lineage")
	}
}
