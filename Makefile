# Development targets. `make check` is the pre-commit gate: vet, lint,
# build, the full test suite under the race detector, and a quick pass
# over the differential tests that pin the compiled lineage kernels to
# the tree-walk reference.
GO ?= go

.PHONY: check vet lint build test race differential mvcc-stress bench bench-parallel bench-planner obs-smoke serve-smoke

check: vet lint build race mvcc-stress differential obs-smoke serve-smoke

vet:
	$(GO) vet ./...

# lint runs go vet, the repo's own static-invariant suite (cmd/pcqelint;
# see DESIGN.md §7 and §12) and, when installed, golangci-lint with
# .golangci.yml. golangci-lint is optional so hermetic environments
# still get the full vet + pcqelint gate.
lint: vet
	$(GO) run ./cmd/pcqelint ./...
	@if command -v golangci-lint >/dev/null 2>&1; then \
		golangci-lint run ./...; \
	else \
		echo "golangci-lint not installed; skipped (pcqelint ran)"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The MVCC suite under the race detector: snapshot-isolation semantics,
# the concurrent reader/writer stress tests with commit-fault injection,
# and the transactional improvement-plan apply path. -count=1 forces a
# fresh run (the stress tests are scheduling-sensitive, so a cached
# verdict proves nothing).
mvcc-stress:
	$(GO) test -race -count=1 -run 'MVCC' ./internal/relation/ ./internal/core/

# The compiled-vs-treewalk differential tests (bit-identical plans and
# derivative rows) in internal/lineage and internal/strategy.
differential:
	$(GO) test -run Differential -count=1 ./internal/lineage/ ./internal/strategy/

# obs-smoke runs the README example workload with tracing and metrics
# on and asserts the observability surfaces are live: the span tree
# shows the strategy phase and the snapshot counted the query.
obs-smoke:
	@out=$$($(GO) run ./cmd/pcqe \
		-table Proposal=testdata/proposal.csv \
		-table CompanyInfo=testdata/companyinfo.csv \
		-role mark=manager -policy manager:investment:0.06 \
		-user mark -purpose investment -min 1 -trace -metrics \
		'SELECT DISTINCT CompanyInfo.Company, Income FROM CompanyInfo JOIN Proposal ON CompanyInfo.Company = Proposal.Company WHERE Funding < 1000000' 2>&1); \
	echo "$$out" | grep -q '^  strategy ' || { echo "obs-smoke: no strategy span in trace"; echo "$$out"; exit 1; }; \
	echo "$$out" | grep -q 'engine.queries 1' || { echo "obs-smoke: metrics snapshot missing engine.queries"; echo "$$out"; exit 1; }; \
	echo "obs-smoke: ok"

# serve-smoke boots pcqed on the README fixtures, drives one scripted
# HTTP session per role (sue released, mark withheld → propose → apply →
# released, unpolicied pair refused), then SIGTERMs the daemon and
# asserts a clean drain with the audit journal flushed gap-free.
serve-smoke:
	@sh scripts/serve_smoke.sh

# Greedy phase-1 gain evaluation (compiled kernels vs legacy tree walk)
# plus the parallel D&C worker-pool scaling benchmark.
bench:
	$(GO) test -run xxx -bench 'BenchmarkCompiledVsTreewalk|BenchmarkDnCParallel' -benchtime 3x .

# Worker-pool scaling across GOMAXPROCS settings: the serial and
# fixed-width variants must not regress at -cpu 1, and workersAuto must
# track the core count upward.
bench-parallel:
	$(GO) test -run xxx -bench BenchmarkDnCParallel -benchtime 3x -cpu 1,2,4 .

# Cost-based planner vs rule-based statement order, plus the plan-cache
# hit-rate sweep; writes BENCH_planner.json to the working directory.
bench-planner:
	$(GO) run ./cmd/benchrunner -fig planner
