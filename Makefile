# Development targets. `make check` is the pre-commit gate: vet, build,
# the full test suite under the race detector, and a quick pass over the
# differential tests that pin the compiled lineage kernels to the
# tree-walk reference.
GO ?= go

.PHONY: check vet build test race differential bench

check: vet build race differential

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The compiled-vs-treewalk differential tests (bit-identical plans and
# derivative rows) in internal/lineage and internal/strategy.
differential:
	$(GO) test -run Differential -count=1 ./internal/lineage/ ./internal/strategy/

# Greedy phase-1 gain evaluation: compiled kernels vs legacy tree walk.
bench:
	$(GO) test -run xxx -bench BenchmarkCompiledVsTreewalk -benchtime 3x .
