// Benchmarks mirroring the paper's evaluation (one per table/figure) as
// testing.B micro-benchmarks. They exercise the same code paths as
// cmd/benchrunner but at fixed, bench-friendly sizes so `go test
// -bench=.` finishes quickly; run `go run ./cmd/benchrunner -full` for
// the paper's complete grid with wall-clock numbers.
package pcqe

import (
	"fmt"
	"testing"

	"pcqe/internal/lineage"
	"pcqe/internal/strategy"
	"pcqe/internal/workload"
)

// genInstance builds a Table 4 workload for benchmarks.
func genInstance(b *testing.B, size, perResult int, seed int64) *strategy.Instance {
	b.Helper()
	in, err := workload.Generate(workload.Params{
		DataSize:        size,
		TuplesPerResult: perResult,
		Delta:           0.1,
		Theta:           0.5,
		Beta:            0.6,
		Seed:            seed,
	})
	if err != nil {
		b.Fatal(err)
	}
	return in
}

// tiny builds the Figure 11(a)/(d) instance: 10 tuples, need 3 of 6.
// Initial confidences 0.3–0.5 keep the exhaustive Naive baseline in
// bench-friendly territory (see internal/bench.tinyInstance for the
// same calibration note).
func tiny(b *testing.B, seed int64) *strategy.Instance {
	b.Helper()
	in, err := workload.Generate(workload.Params{
		DataSize: 10, TuplesPerResult: 5, Delta: 0.1,
		Theta: 0.5, Beta: 0.6, Results: 6,
		ConfLo: 0.3, ConfHi: 0.5, Seed: seed,
	})
	if err != nil {
		b.Fatal(err)
	}
	in.Need = 3
	return in
}

func solveB(b *testing.B, s strategy.Solver, mk func() *strategy.Instance) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(mk()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 11(a): heuristic variants without a greedy bound. ---

func BenchmarkFig11aNaive(b *testing.B) {
	solveB(b, &strategy.Heuristic{}, func() *strategy.Instance { return tiny(b, 1) })
}

func BenchmarkFig11aH1(b *testing.B) {
	solveB(b, &strategy.Heuristic{UseH1: true}, func() *strategy.Instance { return tiny(b, 1) })
}

func BenchmarkFig11aH2(b *testing.B) {
	solveB(b, &strategy.Heuristic{UseH2: true}, func() *strategy.Instance { return tiny(b, 1) })
}

func BenchmarkFig11aH3(b *testing.B) {
	solveB(b, &strategy.Heuristic{UseH3: true}, func() *strategy.Instance { return tiny(b, 1) })
}

func BenchmarkFig11aH4(b *testing.B) {
	solveB(b, &strategy.Heuristic{UseH4: true}, func() *strategy.Instance { return tiny(b, 1) })
}

func BenchmarkFig11aAll(b *testing.B) {
	solveB(b, &strategy.Heuristic{UseH1: true, UseH2: true, UseH3: true, UseH4: true},
		func() *strategy.Instance { return tiny(b, 1) })
}

// --- Figure 11(d): the same variants seeded with the greedy bound. ---

func BenchmarkFig11dNaive(b *testing.B) {
	solveB(b, &strategy.Heuristic{GreedyBound: true}, func() *strategy.Instance { return tiny(b, 1) })
}

func BenchmarkFig11dAll(b *testing.B) {
	solveB(b, strategy.NewHeuristic(), func() *strategy.Instance { return tiny(b, 1) })
}

// --- Figure 11(b): greedy one-phase vs two-phase, response time. ---

func BenchmarkFig11bOnePhase1K(b *testing.B) {
	solveB(b, &strategy.Greedy{SkipRefinement: true},
		func() *strategy.Instance { return genInstance(b, 1000, 5, 1) })
}

func BenchmarkFig11bTwoPhase1K(b *testing.B) {
	solveB(b, &strategy.Greedy{}, func() *strategy.Instance { return genInstance(b, 1000, 5, 1) })
}

// --- Figure 11(e): the cost side is a shape assertion, not a timing. ---

func BenchmarkFig11eRefinementGain(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		one, err := (&strategy.Greedy{SkipRefinement: true}).Solve(genInstance(b, 1000, 5, 1))
		if err != nil {
			b.Fatal(err)
		}
		two, err := (&strategy.Greedy{}).Solve(genInstance(b, 1000, 5, 1))
		if err != nil {
			b.Fatal(err)
		}
		if two.Cost > one.Cost {
			b.Fatal("refinement increased cost")
		}
		b.ReportMetric(100*(one.Cost-two.Cost)/one.Cost, "%cost-reduction")
	}
}

// --- Figure 11(c)/(f): the three algorithms across sizes. ---

func BenchmarkFig11cHeuristicTiny(b *testing.B) {
	solveB(b, strategy.NewHeuristic(), func() *strategy.Instance { return tiny(b, 1) })
}

func BenchmarkFig11cGreedy1K(b *testing.B) {
	solveB(b, &strategy.Greedy{}, func() *strategy.Instance { return genInstance(b, 1000, 5, 1) })
}

func BenchmarkFig11cGreedy5K(b *testing.B) {
	solveB(b, &strategy.Greedy{}, func() *strategy.Instance { return genInstance(b, 5000, 5, 1) })
}

func BenchmarkFig11cDnc1K(b *testing.B) {
	solveB(b, strategy.NewDivideAndConquer(), func() *strategy.Instance { return genInstance(b, 1000, 5, 1) })
}

func BenchmarkFig11cDnc5K(b *testing.B) {
	solveB(b, strategy.NewDivideAndConquer(), func() *strategy.Instance { return genInstance(b, 5000, 5, 1) })
}

func BenchmarkFig11cDnc10K(b *testing.B) {
	solveB(b, strategy.NewDivideAndConquer(), func() *strategy.Instance { return genInstance(b, 10000, 10, 1) })
}

// --- Ablations (design choices from DESIGN.md). ---

func BenchmarkAblationGainIncremental(b *testing.B) {
	solveB(b, &strategy.Greedy{Incremental: true},
		func() *strategy.Instance { return genInstance(b, 5000, 5, 1) })
}

func BenchmarkAblationGainRescan(b *testing.B) {
	solveB(b, &strategy.Greedy{}, func() *strategy.Instance { return genInstance(b, 5000, 5, 1) })
}

func BenchmarkAblationGamma(b *testing.B) {
	for _, gamma := range []int{1, 2, 5} {
		b.Run(gammaName(gamma), func(b *testing.B) {
			solveB(b, &strategy.DivideAndConquer{Gamma: gamma, Tau: 8, MaxGroupResults: 64},
				func() *strategy.Instance { return genInstance(b, 5000, 5, 1) })
		})
	}
}

func gammaName(g int) string { return "gamma" + string(rune('0'+g)) }

func BenchmarkAblationTau(b *testing.B) {
	for _, tau := range []int{0, 8} {
		name := "tau0"
		if tau == 8 {
			name = "tau8"
		}
		b.Run(name, func(b *testing.B) {
			solveB(b, &strategy.DivideAndConquer{Gamma: 1, Tau: tau, MaxGroupResults: 64},
				func() *strategy.Instance { return genInstance(b, 1000, 5, 1) })
		})
	}
}

func BenchmarkAblationOrdering(b *testing.B) {
	b.Run("instance-order", func(b *testing.B) {
		solveB(b, &strategy.Heuristic{UseH2: true, UseH3: true, UseH4: true},
			func() *strategy.Instance { return tiny(b, 1) })
	})
	b.Run("H1-order", func(b *testing.B) {
		solveB(b, &strategy.Heuristic{UseH1: true, UseH2: true, UseH3: true, UseH4: true},
			func() *strategy.Instance { return tiny(b, 1) })
	})
}

func BenchmarkAblationShannon(b *testing.B) {
	// (x∧a1)∨(x∧a2)∨...: one shared variable across 8 clauses.
	x := lineage.NewVar(1)
	var clauses []*lineage.Expr
	assign := lineage.MapAssignment{1: 0.5}
	for i := 2; i < 10; i++ {
		v := lineage.Var(i)
		assign[v] = 0.3
		clauses = append(clauses, lineage.And(x, lineage.NewVar(v)))
	}
	e := lineage.Or(clauses...)
	b.Run("exact", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			lineage.Prob(e, assign)
		}
	})
	b.Run("independent", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			lineage.ProbIndependent(e, assign)
		}
	})
}

// --- Substrate micro-benchmarks. ---

func BenchmarkLineageProbReadOnce(b *testing.B) {
	in := genInstance(b, 1000, 25, 1)
	assign := lineage.FuncAssignment(func(v lineage.Var) float64 { return 0.1 })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lineage.ProbIndependent(in.Results[i%len(in.Results)].Formula, assign)
	}
}

func BenchmarkLineageDerivatives(b *testing.B) {
	in := genInstance(b, 1000, 25, 1)
	assign := lineage.FuncAssignment(func(v lineage.Var) float64 { return 0.1 })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lineage.Derivatives(in.Results[i%len(in.Results)].Formula, assign)
	}
}

func BenchmarkWorkloadGenerate10K(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := workload.Generate(workload.Params{
			DataSize: 10000, TuplesPerResult: 5, Delta: 0.1,
			Theta: 0.5, Beta: 0.6, Seed: int64(i + 1),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartition5K(b *testing.B) {
	in := genInstance(b, 5000, 5, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		strategy.Partition(in, 1, 64)
	}
}

func BenchmarkAblationParallelDnc(b *testing.B) {
	b.Run("sequential", func(b *testing.B) {
		solveB(b, &strategy.DivideAndConquer{Gamma: 1, Tau: 8, MaxGroupResults: 64},
			func() *strategy.Instance { return genInstance(b, 5000, 5, 1) })
	})
	b.Run("parallel", func(b *testing.B) {
		solveB(b, &strategy.DivideAndConquer{Gamma: 1, Tau: 8, MaxGroupResults: 64, Parallel: true},
			func() *strategy.Instance { return genInstance(b, 5000, 5, 1) })
	})
}

// BenchmarkDnCParallel drives the D&C worker pool at Table 4 defaults;
// run with -cpu 1,2,4 (`make bench-parallel`) to measure it across
// GOMAXPROCS settings. workersAuto sizes the pool to GOMAXPROCS (the
// -workers 0 default) so it tracks -cpu; the fixed-width variants pin
// the pool independent of -cpu to separate queueing overhead from real
// parallelism. Every variant produces a bit-identical plan.
func BenchmarkDnCParallel(b *testing.B) {
	mk := func() *strategy.Instance { return genInstance(b, 10000, 5, 1) }
	b.Run("serial", func(b *testing.B) {
		solveB(b, &strategy.DivideAndConquer{Gamma: 1, Tau: 8, MaxGroupResults: 64, Workers: 1}, mk)
	})
	b.Run("workersAuto", func(b *testing.B) {
		solveB(b, &strategy.DivideAndConquer{Gamma: 1, Tau: 8, MaxGroupResults: 64, Parallel: true}, mk)
	})
	for _, w := range []int{2, 4} {
		b.Run(fmt.Sprintf("workers%d", w), func(b *testing.B) {
			solveB(b, &strategy.DivideAndConquer{Gamma: 1, Tau: 8, MaxGroupResults: 64, Workers: w}, mk)
		})
	}
}

// --- Compiled lineage kernels vs the legacy tree walk. ---

// BenchmarkCompiledVsTreewalk times greedy phase 1 (the gain-evaluation
// hot loop, refinement skipped) at Table 4 defaults on both evaluation
// paths, for the faithful full-rescan selection and the lazy-heap
// incremental mode. The instance is generated once outside the timed
// region; both paths solve the identical instance and produce
// bit-identical plans. The compiled path must be ≥2× faster at 10K;
// measured numbers are recorded in EXPERIMENTS.md.
func BenchmarkCompiledVsTreewalk(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		in := genInstance(b, n, 5, 1)
		for _, tc := range []struct {
			name   string
			solver strategy.Solver
		}{
			{"rescan-treewalk", &strategy.Greedy{SkipRefinement: true, TreeWalk: true}},
			{"rescan-compiled", &strategy.Greedy{SkipRefinement: true}},
			{"incremental-treewalk", &strategy.Greedy{SkipRefinement: true, Incremental: true, TreeWalk: true}},
			{"incremental-compiled", &strategy.Greedy{SkipRefinement: true, Incremental: true}},
		} {
			b.Run(fmt.Sprintf("%s-%d", tc.name, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := tc.solver.Solve(in); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkCompiledProbDeriv isolates the evaluation layer: one fused
// compiled probability+derivative sweep against the tree walk's
// Prob + Derivatives on a read-once Table 4 formula.
func BenchmarkCompiledProbDeriv(b *testing.B) {
	in := genInstance(b, 1000, 5, 1)
	e := in.Results[0].Formula
	assign := lineage.MapAssignment{}
	for _, v := range e.Vars() {
		assign[v] = 0.1
	}
	b.Run("treewalk", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			lineage.ProbIndependent(e, assign)
			lineage.Derivatives(e, assign)
		}
	})
	b.Run("compiled", func(b *testing.B) {
		p := lineage.Compile(e)
		m := lineage.NewMachine(p)
		probs := make([]float64, p.NumSlots())
		deriv := make([]float64, p.NumSlots())
		for i, v := range p.Vars() {
			probs[i] = assign[v]
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.ProbDeriv(probs, deriv)
		}
	})
}
