// Command benchrunner regenerates the paper's evaluation artifacts:
// Table 4 and Figure 11 panels (a)–(f), plus the ablation studies listed
// in DESIGN.md. Without flags it runs a reduced grid that finishes in
// well under a minute; -full runs the paper's complete parameter sweep.
//
// Usage:
//
//	benchrunner [-fig all|table4|11a..11f|ablations] [-full] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pcqe/internal/bench"
)

func main() {
	fig := flag.String("fig", "all", "experiment to run: "+strings.Join(bench.Names(), ", "))
	full := flag.Bool("full", false, "run the paper's complete parameter grid (slow)")
	seed := flag.Int64("seed", 1, "workload random seed")
	flag.Parse()

	opt := bench.Options{Full: *full, Seed: *seed}
	tables, err := bench.Run(*fig, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
	for i, t := range tables {
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(t.Format())
	}
}
