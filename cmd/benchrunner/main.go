// Command benchrunner regenerates the paper's evaluation artifacts:
// Table 4 and Figure 11 panels (a)–(f), plus the ablation studies listed
// in DESIGN.md. Without flags it runs a reduced grid that finishes in
// well under a minute; -full runs the paper's complete parameter sweep.
//
// Usage:
//
//	benchrunner [-fig all|table4|11a..11f|ablations|parallel] [-full]
//	            [-seed N] [-workers N]
//	            [-cpuprofile f] [-memprofile f] [-debug-listen addr]
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // debug listener endpoints, opt-in via -debug-listen
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"pcqe/internal/bench"
)

func main() {
	fig := flag.String("fig", "all", "experiment to run: "+strings.Join(bench.Names(), ", "))
	full := flag.Bool("full", false, "run the paper's complete parameter grid (slow)")
	seed := flag.Int64("seed", 1, "workload random seed")
	workers := flag.Int("workers", 0, "worker-pool width for the parallel scaling experiment's size sweep (0 = GOMAXPROCS)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	debugListen := flag.String("debug-listen", "", "serve expvar and net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()

	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "benchrunner: -workers must be non-negative, got %d (0 = GOMAXPROCS, 1 = serial)\n", *workers)
		os.Exit(1)
	}
	if err := run(*fig, *full, *seed, *workers, *cpuProfile, *memProfile, *debugListen); err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
}

func run(fig string, full bool, seed int64, workers int, cpuProfile, memProfile, debugListen string) error {
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if memProfile != "" {
		defer func() {
			f, err := os.Create(memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchrunner:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "benchrunner:", err)
			}
		}()
	}
	if debugListen != "" {
		go func() {
			// DefaultServeMux carries the expvar and pprof handlers.
			if err := http.ListenAndServe(debugListen, nil); err != nil {
				fmt.Fprintln(os.Stderr, "benchrunner: debug listener:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "debug listener on http://%s/debug/pprof/ and /debug/vars\n", debugListen)
	}

	opt := bench.Options{Full: full, Seed: seed, Workers: workers}
	tables, err := bench.Run(fig, opt)
	if err != nil {
		return err
	}
	for i, t := range tables {
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(t.Format())
	}
	return nil
}
