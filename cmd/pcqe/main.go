// Command pcqe is a small policy-compliant query shell: it loads CSV
// tables (with per-row confidence and cost columns), installs confidence
// policies, and evaluates SQL queries the way the PCQE framework does —
// computing result confidences from lineage, filtering by the policy for
// the given user and purpose, and proposing minimum-cost confidence
// improvements when too few rows survive.
//
// Usage:
//
//	pcqe -table Name=file.csv [-table ...] \
//	     -role user=role [-role ...] \
//	     -policy role:purpose:beta [-policy ...] \
//	     -user alice -purpose analysis [-min 0.5] [-apply] [-timeout 2s] \
//	     'SELECT ...'
//
// CSV files use the table's column names as the header, plus optional
// "_confidence" (default 1) and "_cost_rate" (linear improvement cost;
// omit to mark the row non-improvable) columns. Column types are
// inferred from the first data row (integer, real, then text).
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // debug listener endpoints, opt-in via -debug-listen
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"pcqe/internal/core"
	"pcqe/internal/obs"
	"pcqe/internal/policy"
	"pcqe/internal/relation"
	"pcqe/internal/sql"
)

type listFlag []string

func (l *listFlag) String() string     { return strings.Join(*l, ",") }
func (l *listFlag) Set(v string) error { *l = append(*l, v); return nil }

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pcqe:", err)
		os.Exit(1)
	}
}

func run() error {
	var tables, roles, policies listFlag
	flag.Var(&tables, "table", "Name=file.csv (repeatable)")
	flag.Var(&roles, "role", "user=role assignment (repeatable)")
	flag.Var(&policies, "policy", "role:purpose:beta confidence policy (repeatable)")
	user := flag.String("user", "", "user issuing the query")
	purpose := flag.String("purpose", "any", "purpose of the query")
	minFrac := flag.Float64("min", 0, "θ: fraction of results required (enables improvement proposals)")
	apply := flag.Bool("apply", false, "apply the improvement proposal and re-run the query")
	timeout := flag.Duration("timeout", 0, "wall-clock bound for the request; improvement planning degrades to a partial proposal when it expires (0 = no limit)")
	workers := flag.Int("workers", 0, "worker goroutines for parallel improvement planning (0 = GOMAXPROCS, 1 = serial); plans are identical for every value")
	execScript := flag.String("exec", "", "SQL script file to execute before the query (CREATE TABLE / INSERT ... WITH CONFIDENCE / UPDATE / DELETE)")
	explain := flag.Bool("explain", false, "print the chosen query plan with cost estimates to stderr before evaluating")
	trace := flag.Bool("trace", false, "dump the request's phase-timing span tree to stderr")
	metricsDump := flag.Bool("metrics", false, "dump the engine metrics snapshot to stderr")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	debugListen := flag.String("debug-listen", "", "serve expvar and net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()

	// A -timeout the user explicitly set to zero or a negative duration
	// silently meant "no limit"; reject it instead of surprising them.
	var timeoutSet bool
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "timeout" {
			timeoutSet = true
		}
	})
	if timeoutSet && *timeout <= 0 {
		return fmt.Errorf("-timeout must be positive, got %v (omit the flag for no limit)", *timeout)
	}
	if *workers < 0 {
		return fmt.Errorf("-workers must be non-negative, got %d (0 = GOMAXPROCS, 1 = serial)", *workers)
	}
	nworkers := *workers
	if nworkers == 0 {
		nworkers = runtime.GOMAXPROCS(0)
	}

	if flag.NArg() != 1 {
		return fmt.Errorf("exactly one SQL query argument expected")
	}
	query := flag.Arg(0)

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pcqe:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "pcqe:", err)
			}
		}()
	}

	cat := relation.NewCatalog()
	for _, spec := range tables {
		name, file, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("bad -table %q, want Name=file.csv", spec)
		}
		if err := loadTable(cat, name, file); err != nil {
			return err
		}
	}
	if *execScript != "" {
		script, err := os.ReadFile(*execScript)
		if err != nil {
			return err
		}
		results, err := sql.ExecScript(cat, string(script))
		for _, r := range results {
			fmt.Fprintln(os.Stderr, r.Message)
		}
		if err != nil {
			return err
		}
	}

	rbac := policy.NewRBAC()
	purposes := policy.NewPurposeTree()
	store := policy.NewStore(rbac, purposes)
	for _, spec := range policies {
		parts := strings.Split(spec, ":")
		if len(parts) != 3 {
			return fmt.Errorf("bad -policy %q, want role:purpose:beta", spec)
		}
		beta, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return fmt.Errorf("bad -policy threshold %q: %w", parts[2], err)
		}
		rbac.AddRole(parts[0])
		if parts[1] != policy.Root && !purposes.Has(parts[1]) {
			if err := purposes.Add(parts[1], ""); err != nil {
				return err
			}
		}
		if err := store.Add(policy.ConfidencePolicy{Role: parts[0], Purpose: parts[1], Beta: beta}); err != nil {
			return err
		}
	}
	for _, spec := range roles {
		u, r, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("bad -role %q, want user=role", spec)
		}
		rbac.AddRole(r)
		if err := rbac.AssignUser(u, r); err != nil {
			return err
		}
	}

	engine := core.NewEngine(cat, store, nil)
	metrics := obs.New()
	engine.SetMetrics(metrics)
	if *trace {
		engine.SetTracer(obs.NewRingTracer(0))
	}
	if *debugListen != "" {
		if err := metrics.Publish("pcqe"); err != nil {
			return err
		}
		go func() {
			// DefaultServeMux carries the expvar and pprof handlers.
			if err := http.ListenAndServe(*debugListen, nil); err != nil {
				fmt.Fprintln(os.Stderr, "pcqe: debug listener:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "debug listener on http://%s/debug/pprof/ and /debug/vars\n", *debugListen)
	}

	if *explain {
		stmt, err := sql.Parse(query)
		if err != nil {
			return err
		}
		op, info, err := sql.PlanDetailed(cat, stmt)
		if err != nil {
			return err
		}
		kind := "rule-based"
		if info.CostBased {
			kind = "cost-based"
		}
		fmt.Fprintf(os.Stderr, "plan (%s, lineage %s):\n%s\n",
			kind, info.LineageHint, relation.ExplainAnnotated(op, info.Notes))
	}

	req := core.Request{User: *user, Query: query, Purpose: *purpose, MinFraction: *minFrac, Timeout: *timeout, Workers: nworkers}
	resp, err := engine.Evaluate(req)
	if err != nil {
		return err
	}
	fmt.Print(resp.Report())
	if *trace {
		fmt.Fprint(os.Stderr, "trace:\n"+resp.Timings.Tree())
	}

	if *apply && resp.Proposal != nil {
		if err := engine.Apply(resp.Proposal); err != nil {
			return err
		}
		fmt.Println("\napplied improvement; re-evaluating:")
		resp, err = engine.Evaluate(req)
		if err != nil {
			return err
		}
		fmt.Print(resp.Report())
		if *trace {
			fmt.Fprint(os.Stderr, "trace:\n"+resp.Timings.Tree())
		}
	}
	if *metricsDump {
		fmt.Fprint(os.Stderr, "metrics:\n"+metrics.Snapshot().String())
	}
	return nil
}

// loadTable infers a schema from the CSV header and first data row,
// creates the table and loads every row.
func loadTable(cat *relation.Catalog, name, file string) error {
	f, err := os.Open(file)
	if err != nil {
		return err
	}
	defer f.Close()

	schema, err := inferSchema(file)
	if err != nil {
		return err
	}
	tab, err := cat.CreateTable(name, schema)
	if err != nil {
		return err
	}
	n, err := relation.LoadCSV(tab, f)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loaded %s: %d rows\n", name, n)
	return nil
}

func inferSchema(file string) (*relation.Schema, error) {
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var header, sample []string
	buf := make([]byte, 1<<20)
	n, _ := f.Read(buf)
	lines := strings.SplitN(string(buf[:n]), "\n", 3)
	if len(lines) < 2 {
		return nil, fmt.Errorf("%s: need a header and at least one row", file)
	}
	header = strings.Split(strings.TrimRight(lines[0], "\r"), ",")
	sample = strings.Split(strings.TrimRight(lines[1], "\r"), ",")
	var cols []relation.Column
	for i, h := range header {
		h = strings.TrimSpace(h)
		if h == relation.ConfidenceColumn || h == relation.CostColumn {
			continue
		}
		typ := relation.TypeString
		if i < len(sample) {
			v := strings.TrimSpace(sample[i])
			if _, err := strconv.ParseInt(v, 10, 64); err == nil {
				typ = relation.TypeInt
			} else if _, err := strconv.ParseFloat(v, 64); err == nil {
				typ = relation.TypeFloat
			}
		}
		cols = append(cols, relation.Column{Name: h, Type: typ})
	}
	return relation.NewSchema(cols...), nil
}
