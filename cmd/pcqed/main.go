// Command pcqed is the policy-compliant query daemon: one shared PCQE
// engine served over HTTP/JSON to many concurrent sessions. Each
// session authenticates to a ⟨user, purpose⟩ pair at handshake; the
// applicable confidence policy's β then filters every query the
// session runs, queries pin one MVCC snapshot each, and improvement
// proposals are offered and applied per session.
//
// Usage:
//
//	pcqed -table Name=file.csv [-table ...] \
//	      -role user=role [-role ...] \
//	      -policy role:purpose:beta [-policy ...] \
//	      [-listen 127.0.0.1:8633] [-journal audit.jsonl] \
//	      [-max-sessions 64] [-worker-pool 8] [-drain-timeout 5s]
//
// The daemon prints "pcqed listening on http://ADDR" once bound (use
// -listen 127.0.0.1:0 plus -addr-file for scripted clients) and drains
// gracefully on SIGTERM/SIGINT: it stops accepting sessions and
// queries, finishes in-flight requests under -drain-timeout, flushes
// the audit journal, and exits 0.
//
// Protocol sketch (see DESIGN.md §13 for the full contract):
//
//	POST   /v1/session  {"user":"sue","purpose":"analysis"}  → {"token":...}
//	POST   /v1/query    {"query":"SELECT ...","min_fraction":0.5}
//	POST   /v1/explain  {"query":"SELECT ..."}
//	POST   /v1/apply    {"proposal_id":"p1"}
//	GET    /v1/audit?limit=20
//	DELETE /v1/session
//	GET    /v1/healthz
//
// All but the handshake and healthz require "Authorization: Bearer
// <token>".
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // debug listener endpoints, opt-in via -debug-listen
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pcqe/internal/core"
	"pcqe/internal/obs"
	"pcqe/internal/policy"
	"pcqe/internal/relation"
	"pcqe/internal/server"
	"pcqe/internal/sql"
	"pcqe/internal/strategy"
)

type listFlag []string

func (l *listFlag) String() string     { return strings.Join(*l, ",") }
func (l *listFlag) Set(v string) error { *l = append(*l, v); return nil }

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pcqed:", err)
		os.Exit(1)
	}
}

func run() error {
	var tables, roles, policies listFlag
	flag.Var(&tables, "table", "Name=file.csv (repeatable)")
	flag.Var(&roles, "role", "user=role assignment (repeatable)")
	flag.Var(&policies, "policy", "role:purpose:beta confidence policy (repeatable)")
	execScript := flag.String("exec", "", "SQL script file to execute at startup (CREATE TABLE / INSERT ... WITH CONFIDENCE / ...)")
	listen := flag.String("listen", "127.0.0.1:8633", "address to serve on (use port 0 for an ephemeral port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening (for scripted clients with -listen ...:0)")
	journal := flag.String("journal", "", "flush the audit journal to this JSONL file on drain")
	maxSessions := flag.Int("max-sessions", server.DefaultMaxSessions, "maximum concurrently open sessions")
	maxInFlight := flag.Int("max-inflight", server.DefaultMaxInFlight, "maximum concurrent requests per session")
	workerPool := flag.Int("worker-pool", server.DefaultWorkerPool, "maximum concurrently evaluating requests server-wide; beyond it requests get 503 + Retry-After")
	defaultTimeout := flag.Duration("default-timeout", 0, "per-request wall-clock default when the client sets none (0 = no limit)")
	maxTimeout := flag.Duration("max-timeout", 0, "ceiling on per-request wall-clock budgets, including 'unlimited' requests (0 = no ceiling)")
	maxNodes := flag.Int("max-nodes", 0, "ceiling on per-request solver node budgets (0 = no ceiling)")
	maxPivots := flag.Int("max-pivots", 0, "ceiling on per-request Shannon-pivot budgets (0 = no ceiling)")
	maxSteps := flag.Int("max-steps", 0, "ceiling on per-request δ-grid step budgets (0 = no ceiling)")
	drainTimeout := flag.Duration("drain-timeout", server.DefaultDrainTimeout, "how long a SIGTERM drain waits for in-flight requests")
	allowUnpolicied := flag.Bool("allow-unpolicied", false, "admit sessions no confidence policy covers (every row released); off by default")
	traceRing := flag.Int("trace-ring", 0, "retain the last N request span trees (0 = off)")
	debugListen := flag.String("debug-listen", "", "serve expvar and net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()
	if flag.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %q; pcqed takes queries over HTTP, not argv", flag.Args())
	}

	cat := relation.NewCatalog()
	for _, spec := range tables {
		name, file, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("bad -table %q, want Name=file.csv", spec)
		}
		if err := loadTable(cat, name, file); err != nil {
			return err
		}
	}
	if *execScript != "" {
		script, err := os.ReadFile(*execScript)
		if err != nil {
			return err
		}
		results, err := sql.ExecScript(cat, string(script))
		for _, r := range results {
			fmt.Fprintln(os.Stderr, r.Message)
		}
		if err != nil {
			return err
		}
	}

	rbac := policy.NewRBAC()
	purposes := policy.NewPurposeTree()
	store := policy.NewStore(rbac, purposes)
	for _, spec := range policies {
		parts := strings.Split(spec, ":")
		if len(parts) != 3 {
			return fmt.Errorf("bad -policy %q, want role:purpose:beta", spec)
		}
		beta, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return fmt.Errorf("bad -policy threshold %q: %w", parts[2], err)
		}
		rbac.AddRole(parts[0])
		if parts[1] != policy.Root && !purposes.Has(parts[1]) {
			if err := purposes.Add(parts[1], ""); err != nil {
				return err
			}
		}
		if err := store.Add(policy.ConfidencePolicy{Role: parts[0], Purpose: parts[1], Beta: beta}); err != nil {
			return err
		}
	}
	for _, spec := range roles {
		u, r, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("bad -role %q, want user=role", spec)
		}
		rbac.AddRole(r)
		if err := rbac.AssignUser(u, r); err != nil {
			return err
		}
	}

	engine := core.NewEngine(cat, store, nil)
	engine.SetAudit(&core.AuditLog{})
	metrics := obs.New()
	engine.SetMetrics(metrics)
	if *traceRing > 0 {
		engine.SetTracer(obs.NewRingTracer(*traceRing))
	}
	if *debugListen != "" {
		if err := metrics.Publish("pcqed"); err != nil {
			return err
		}
		go func() {
			// DefaultServeMux carries the expvar and pprof handlers.
			if err := http.ListenAndServe(*debugListen, nil); err != nil {
				fmt.Fprintln(os.Stderr, "pcqed: debug listener:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "debug listener on http://%s/debug/pprof/ and /debug/vars\n", *debugListen)
	}

	srv := server.New(engine, server.Config{
		MaxSessions:     *maxSessions,
		MaxInFlight:     *maxInFlight,
		WorkerPool:      *workerPool,
		DefaultBudget:   strategy.Budget{Timeout: *defaultTimeout},
		MaxBudget:       strategy.Budget{Timeout: *maxTimeout, MaxNodes: *maxNodes, MaxPivots: *maxPivots, MaxSteps: *maxSteps},
		DrainTimeout:    *drainTimeout,
		JournalPath:     *journal,
		AllowUnpolicied: *allowUnpolicied,
	})

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	addr := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(addr+"\n"), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	fmt.Printf("pcqed listening on http://%s\n", addr)

	httpServer := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	errCh := make(chan error, 1)
	go func() {
		if err := httpServer.Serve(ln); err != nil && err != http.ErrServerClosed {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop()

	// Drain: refuse new sessions and queries, finish in-flight requests
	// under the drain deadline, flush the audit journal — then close the
	// listener and connections. Drain errors (deadline expired, journal
	// flush failure) are reported but the HTTP teardown still runs.
	fmt.Println("pcqed draining")
	drainErr := srv.Drain(context.Background())
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout+time.Second)
	defer cancel()
	if err := httpServer.Shutdown(shutCtx); err != nil && drainErr == nil {
		drainErr = err
	}
	<-errCh
	if drainErr != nil {
		return drainErr
	}
	fmt.Println("pcqed drained cleanly")
	return nil
}

// loadTable infers a schema from the CSV header and first data row,
// creates the table and loads every row (same conventions as pcqe:
// optional "_confidence" and "_cost_rate" columns).
func loadTable(cat *relation.Catalog, name, file string) error {
	f, err := os.Open(file)
	if err != nil {
		return err
	}
	defer f.Close()

	schema, err := inferSchema(file)
	if err != nil {
		return err
	}
	tab, err := cat.CreateTable(name, schema)
	if err != nil {
		return err
	}
	n, err := relation.LoadCSV(tab, f)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loaded %s: %d rows\n", name, n)
	return nil
}

func inferSchema(file string) (*relation.Schema, error) {
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 1<<20)
	n, _ := f.Read(buf)
	lines := strings.SplitN(string(buf[:n]), "\n", 3)
	if len(lines) < 2 {
		return nil, fmt.Errorf("%s: need a header and at least one row", file)
	}
	header := strings.Split(strings.TrimRight(lines[0], "\r"), ",")
	sample := strings.Split(strings.TrimRight(lines[1], "\r"), ",")
	var cols []relation.Column
	for i, h := range header {
		h = strings.TrimSpace(h)
		if h == relation.ConfidenceColumn || h == relation.CostColumn {
			continue
		}
		typ := relation.TypeString
		if i < len(sample) {
			v := strings.TrimSpace(sample[i])
			if _, err := strconv.ParseInt(v, 10, 64); err == nil {
				typ = relation.TypeInt
			} else if _, err := strconv.ParseFloat(v, 64); err == nil {
				typ = relation.TypeFloat
			}
		}
		cols = append(cols, relation.Column{Name: h, Type: typ})
	}
	return relation.NewSchema(cols...), nil
}
