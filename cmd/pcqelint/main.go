// Command pcqelint runs the PCQE static-invariant suite — confrange,
// ctxpoll, errdiscipline, auditemit and planalias — over Go packages.
//
// Usage:
//
//	pcqelint [-list] [packages]
//
// With no package patterns it checks ./.... The exit status is 0 when
// the suite is clean, 1 when it reported diagnostics and 2 when the
// packages could not be loaded. Individual findings are suppressed with
// a trailing (or immediately preceding) comment:
//
//	//lint:allow confrange MaxP==0 is the "unset" sentinel, not a comparison
//
// See DESIGN.md §7 for what each analyzer guards and why.
package main

import (
	"flag"
	"fmt"
	"os"

	"pcqe/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pcqelint [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := analysis.Suite()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcqelint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcqelint: %v\n", err)
		os.Exit(2)
	}
	diags := analysis.Run(pkgs, suite)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "pcqelint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
