// Command pcqelint runs the PCQE static-invariant suite — confrange,
// ctxpoll, errdiscipline, auditemit, planalias, snapdiscipline,
// txnmutate, sharedstate and policyflow — over Go packages.
//
// Usage:
//
//	pcqelint [-list] [-json] [packages]
//
// With no package patterns it checks ./.... The exit status is 0 when
// the suite is clean, 1 when it reported diagnostics and 2 when the
// packages could not be loaded. -json writes the findings as a JSON
// array of {file, line, column, analyzer, message} objects (on stdout,
// even when empty) for CI problem matchers and editor integrations.
// Individual findings are suppressed with a trailing (or immediately
// preceding) comment:
//
//	//lint:allow confrange MaxP==0 is the "unset" sentinel, not a comparison
//
// See DESIGN.md §7 and §12 for what each analyzer guards and why.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"pcqe/internal/analysis"
)

// jsonDiagnostic is the stable wire shape of one finding.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array instead of plain text")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pcqelint [-list] [-json] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := analysis.Suite()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcqelint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcqelint: %v\n", err)
		os.Exit(2)
	}
	diags := analysis.Run(pkgs, suite)
	if *asJSON {
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiagnostic{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "pcqelint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "pcqelint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
