// Advisor demonstrates the paper's Section 6 outlook: improving data
// quality takes wall-clock time (audits, record requests, surveys), so a
// decision maker should submit the query ahead of the decision. The
// advisor prices the improvement plan in time — serial worst case and a
// parallel schedule over a pool of auditors — and answers "how much time
// in advance do I need to ask?".
//
// Run with: go run ./examples/advisor
package main

import (
	"fmt"
	"log"
	"time"

	"pcqe"
)

func main() {
	cat := pcqe.NewCatalog()
	audits, err := cat.CreateTable("Audits", pcqe.NewSchema(
		pcqe.Column{Name: "Branch", Type: pcqe.TypeString},
		pcqe.Column{Name: "Irregularities", Type: pcqe.TypeInt},
	))
	if err != nil {
		log.Fatal(err)
	}
	// Six branch reports, all needing verification before the board
	// meeting. Costs are audit-hours per unit of confidence.
	type branch struct {
		name string
		irr  int64
		conf float64
		rate float64
	}
	// One transaction loads the whole report batch: a single committed
	// version instead of one commit per branch.
	tx := cat.Begin()
	for _, b := range []branch{
		{"amsterdam", 2, 0.35, 40},
		{"berlin", 0, 0.4, 25},
		{"calgary", 5, 0.3, 60},
		{"dakar", 1, 0.45, 30},
		{"essen", 3, 0.38, 35},
		{"fukuoka", 0, 0.5, 20},
	} {
		tx.MustInsert(audits, b.conf, pcqe.LinearCost{Rate: b.rate},
			pcqe.String(b.name), pcqe.Int(b.irr))
	}
	if _, err := tx.Commit(); err != nil {
		log.Fatal(err)
	}

	rbac := pcqe.NewRBAC()
	rbac.AddRole("board")
	must(rbac.AssignUser("chair", "board"))
	purposes := pcqe.NewPurposeTree()
	must(purposes.Add("governance", ""))
	store := pcqe.NewPolicyStore(rbac, purposes)
	must(store.Add(pcqe.ConfidencePolicy{Role: "board", Purpose: "governance", Beta: 0.75}))

	engine := pcqe.NewEngine(cat, store, nil)
	req := pcqe.Request{
		User:        "chair",
		Purpose:     "governance",
		MinFraction: 0.667, // the board wants at least 4 of 6 branches verified
		Query:       `SELECT Branch, Irregularities FROM Audits ORDER BY Irregularities DESC`,
	}
	resp, err := engine.Evaluate(req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(resp.Report())
	if resp.Proposal == nil {
		fmt.Println("no improvement needed")
		return
	}

	// One cost unit = one auditor-hour.
	fmt.Println("\nlead-time estimates (1 cost unit = 1 auditor-hour):")
	for _, workers := range []int{1, 2, 4} {
		adv := pcqe.NewAdvisor(time.Hour, workers)
		fmt.Printf("  %d auditor(s): finish in %v (serial bound %v)\n",
			workers, adv.LeadTime(resp.Proposal).Round(time.Minute),
			adv.SerialTime(resp.Proposal).Round(time.Minute))
	}
	adv := pcqe.NewAdvisor(time.Hour, 2)
	fmt.Printf("\nwith 2 auditors, submit this query at least %v before the board meeting\n",
		adv.LeadTime(resp.Proposal).Round(time.Minute))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
