// Compliance shows the governance surface of the library: the database
// is built and maintained through SQL (CREATE TABLE / INSERT ... WITH
// CONFIDENCE / CREATE INDEX), query plans are inspectable with EXPLAIN,
// every policy decision and paid improvement lands in an audit journal,
// and the paper's Section 1 comparison with the Biba strict-integrity
// model is played out on the same data: Biba's all-or-nothing levels
// either starve the analyst or over-share, while confidence policies cut
// per task.
//
// Run with: go run ./examples/compliance
package main

import (
	"fmt"
	"log"

	"pcqe"
)

func main() {
	cat := pcqe.NewCatalog()

	// --- 1. Build the database in SQL, confidence attached per batch. ---
	results, err := pcqe.ExecScript(cat, `
		CREATE TABLE Claims (Patient TEXT, Procedure_ TEXT, Amount REAL);
		INSERT INTO Claims VALUES
			('p1', 'mri', 1200.0), ('p2', 'xray', 150.0)
			WITH CONFIDENCE 0.92 COST 400;
		INSERT INTO Claims VALUES
			('p3', 'mri', 1250.0), ('p4', 'ct', 900.0)
			WITH CONFIDENCE 0.55 COST 120;
		INSERT INTO Claims VALUES ('p5', 'xray', 160.0)
			WITH CONFIDENCE 0.3 COST 60;
		CREATE INDEX ON Claims (Procedure_);
	`)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Println(" ", r.Message)
	}

	// --- 2. EXPLAIN shows the plan (the index serves the equality). ---
	res, err := pcqe.Exec(cat, `EXPLAIN SELECT Patient, Amount FROM Claims WHERE Procedure_ = 'mri'`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nquery plan:")
	fmt.Println(res.Plan)

	// --- 3. Policies and the audit journal. ---
	rbac := pcqe.NewRBAC()
	rbac.AddRole("auditor")
	must(rbac.AssignUser("ada", "auditor"))
	purposes := pcqe.NewPurposeTree()
	must(purposes.Add("fraud-review", ""))
	store := pcqe.NewPolicyStore(rbac, purposes)
	must(store.Add(pcqe.ConfidencePolicy{Role: "auditor", Purpose: "fraud-review", Beta: 0.5}))

	engine := pcqe.NewEngine(cat, store, nil)
	journal := &pcqe.AuditLog{}
	engine.SetAudit(journal)

	req := pcqe.Request{
		User: "ada", Purpose: "fraud-review", MinFraction: 1.0,
		Query: `SELECT Patient, Procedure_, Amount FROM Claims ORDER BY Amount DESC`,
	}
	resp, err := engine.Evaluate(req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- ada (auditor, fraud review, β=0.5) ---")
	fmt.Print(resp.ReportWithLineage())
	if resp.Proposal != nil {
		if err := engine.Apply(resp.Proposal); err != nil {
			log.Fatal(err)
		}
		resp, err = engine.Evaluate(req)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("\n--- after paid verification ---")
		fmt.Print(resp.Report())
	}

	fmt.Println("\naudit journal:")
	for _, e := range journal.Events() {
		fmt.Println(" ", e)
	}
	fmt.Printf("total improvement spend: %.4g\n", journal.TotalImprovementSpend())

	// --- 4. The Biba contrast (paper Section 1): map confidences onto a
	// 3-level integrity ladder and check what a medium-integrity subject
	// may read — it is all-or-nothing per level, with no notion of task
	// and no way to *buy* access to a specific record. ---
	fmt.Println("\nBiba strict integrity on the same data:")
	biba, err := pcqe.NewBiba("low", "medium", "high")
	if err != nil {
		log.Fatal(err)
	}
	must(biba.SetSubject("ada", "high"))
	claims, err := cat.Table("Claims")
	if err != nil {
		log.Fatal(err)
	}
	// Pin a snapshot so the Biba walk sees one committed version.
	snap := cat.Snapshot()
	defer snap.Release()
	readable := 0
	for i, row := range claims.RowsAt(snap) {
		obj := fmt.Sprintf("claim-%d", i)
		must(biba.SetObject(obj, biba.LevelForConfidence(row.Confidence)))
		if biba.CanRead("ada", obj) {
			readable++
		}
	}
	fmt.Printf("  ada (high-integrity) may read %d of %d claims — fixed by level, regardless of task;\n",
		readable, claims.Len())
	fmt.Println("  confidence policies instead released per-row, per-purpose, and priced the upgrade.")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
