// Multiquery demonstrates the paper's Section 4 extension: when a user
// issues several queries within a short period, the strategy finder
// plans one shared set of confidence increments covering all of them —
// the search space is the union of the queries' base tuples, and a
// solution must satisfy every query's requirement. Sharing the plan is
// cheaper than improving for each query separately whenever the queries
// touch overlapping data.
//
// Run with: go run ./examples/multiquery
package main

import (
	"fmt"
	"log"

	"pcqe"
)

func main() {
	cat := pcqe.NewCatalog()
	suppliers, err := cat.CreateTable("Suppliers", pcqe.NewSchema(
		pcqe.Column{Name: "Name", Type: pcqe.TypeString},
		pcqe.Column{Name: "Region", Type: pcqe.TypeString},
		pcqe.Column{Name: "Rating", Type: pcqe.TypeFloat},
	))
	if err != nil {
		log.Fatal(err)
	}
	shipments, err := cat.CreateTable("Shipments", pcqe.NewSchema(
		pcqe.Column{Name: "Supplier", Type: pcqe.TypeString},
		pcqe.Column{Name: "OnTime", Type: pcqe.TypeFloat},
	))
	if err != nil {
		log.Fatal(err)
	}
	// Low-confidence records about the same two suppliers: both queries
	// below depend on them, so one improvement serves both.
	suppliers.MustInsert(0.35, pcqe.LinearCost{Rate: 200},
		pcqe.String("Nordia"), pcqe.String("north"), pcqe.Float(4.2))
	suppliers.MustInsert(0.4, pcqe.LinearCost{Rate: 120},
		pcqe.String("Sudia"), pcqe.String("south"), pcqe.Float(3.9))
	shipments.MustInsert(0.5, pcqe.LinearCost{Rate: 80},
		pcqe.String("Nordia"), pcqe.Float(0.97))
	shipments.MustInsert(0.45, pcqe.LinearCost{Rate: 90},
		pcqe.String("Sudia"), pcqe.Float(0.91))

	rbac := pcqe.NewRBAC()
	rbac.AddRole("buyer")
	must(rbac.AssignUser("bea", "buyer"))
	purposes := pcqe.NewPurposeTree()
	must(purposes.Add("procurement", ""))
	store := pcqe.NewPolicyStore(rbac, purposes)
	must(store.Add(pcqe.ConfidencePolicy{Role: "buyer", Purpose: "procurement", Beta: 0.45}))

	engine := pcqe.NewEngine(cat, store, nil)
	reqs := []pcqe.Request{
		{
			User: "bea", Purpose: "procurement", MinFraction: 1.0,
			Query: `SELECT Name, Rating FROM Suppliers WHERE Rating > 3.5`,
		},
		{
			User: "bea", Purpose: "procurement", MinFraction: 1.0,
			Query: `SELECT Suppliers.Name, OnTime
				FROM Suppliers JOIN Shipments ON Suppliers.Name = Shipments.Supplier
				WHERE OnTime > 0.9`,
		},
	}

	resps, shared, err := engine.EvaluateMulti(reqs)
	if err != nil {
		log.Fatal(err)
	}
	for i, resp := range resps {
		fmt.Printf("--- query %d ---\n%s\n", i+1, resp.Report())
	}
	if shared == nil {
		fmt.Println("no shared improvement needed")
		return
	}
	fmt.Printf("shared improvement plan (%s), total cost %.4g:\n", shared.Solver(), shared.Cost())
	for _, inc := range shared.Increments() {
		fmt.Printf("  raise tuple t%d: %.3g → %.3g (cost %.4g)\n",
			int(inc.Var), inc.From, inc.To, inc.Cost)
	}

	// Compare against improving per query in isolation.
	separate := 0.0
	for _, req := range reqs {
		resp, err := engine.Evaluate(req)
		if err != nil {
			log.Fatal(err)
		}
		if resp.Proposal != nil {
			separate += resp.Proposal.Cost()
		}
	}
	fmt.Printf("sum of per-query plans: %.4g (shared plan saves %.4g)\n",
		separate, separate-shared.Cost())

	if err := engine.Apply(shared); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- after applying the shared plan ---")
	for i, req := range reqs {
		resp, err := engine.Evaluate(req)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %d: %s\n", i+1, resp.String())
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
