// Quickstart walks the paper's running example (Section 3.1) end to
// end: the venture-capital database of Tables 1–2, the query for
// financial information of companies asking for less than one million
// dollars, the two confidence policies P1 and P2, and the minimum-cost
// confidence increment that lets the manager see the result.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pcqe"
)

func main() {
	// --- 1. The database: base tuples carry confidence and a cost
	// function for improving it. Tuple numbering follows the paper. ---
	cat := pcqe.NewCatalog()
	proposal, err := cat.CreateTable("Proposal", pcqe.NewSchema(
		pcqe.Column{Name: "Company", Type: pcqe.TypeString},
		pcqe.Column{Name: "Proposal", Type: pcqe.TypeString},
		pcqe.Column{Name: "Funding", Type: pcqe.TypeFloat},
	))
	if err != nil {
		log.Fatal(err)
	}
	info, err := cat.CreateTable("CompanyInfo", pcqe.NewSchema(
		pcqe.Column{Name: "Company", Type: pcqe.TypeString},
		pcqe.Column{Name: "Income", Type: pcqe.TypeFloat},
	))
	if err != nil {
		log.Fatal(err)
	}
	// Tuple 01: AcmeSoft wants too much money — filtered by the query.
	proposal.MustInsert(0.5, pcqe.LinearCost{Rate: 500},
		pcqe.String("AcmeSoft"), pcqe.String("cloud platform"), pcqe.Float(2_000_000))
	// Tuples 02 and 03: ZStart's proposals. Raising tuple 02's
	// confidence by 0.1 costs 100; raising tuple 03's costs 10 (the
	// paper's cost asymmetry).
	proposal.MustInsert(0.3, pcqe.LinearCost{Rate: 1000},
		pcqe.String("ZStart"), pcqe.String("sensor mesh"), pcqe.Float(800_000))
	proposal.MustInsert(0.4, pcqe.LinearCost{Rate: 100},
		pcqe.String("ZStart"), pcqe.String("mobile app"), pcqe.Float(900_000))
	// Tuple 13: ZStart's financials, low confidence (young company).
	info.MustInsert(0.1, pcqe.LinearCost{Rate: 2000},
		pcqe.String("ZStart"), pcqe.Float(120_000))
	info.MustInsert(0.9, nil, pcqe.String("AcmeSoft"), pcqe.Float(5_000_000))

	// --- 2. Policies: P1 = ⟨Secretary, analysis, 0.05⟩ and
	// P2 = ⟨Manager, investment, 0.06⟩. ---
	rbac := pcqe.NewRBAC()
	rbac.AddRole("secretary")
	rbac.AddRole("manager")
	must(rbac.AssignUser("sue", "secretary"))
	must(rbac.AssignUser("mark", "manager"))
	purposes := pcqe.NewPurposeTree()
	must(purposes.Add("analysis", ""))
	must(purposes.Add("investment", ""))
	store := pcqe.NewPolicyStore(rbac, purposes)
	must(store.Add(pcqe.ConfidencePolicy{Role: "secretary", Purpose: "analysis", Beta: 0.05}))
	must(store.Add(pcqe.ConfidencePolicy{Role: "manager", Purpose: "investment", Beta: 0.06}))

	engine := pcqe.NewEngine(cat, store, nil)
	const query = `
		SELECT DISTINCT CompanyInfo.Company, Income
		FROM CompanyInfo JOIN Proposal ON CompanyInfo.Company = Proposal.Company
		WHERE Funding < 1000000`

	// --- 3. The secretary's view: p38 = (p02 ∨ p03) ∧ p13 = 0.058
	// clears her 0.05 threshold. ---
	fmt.Println("--- sue (secretary, purpose analysis, β=0.05) ---")
	resp, err := engine.Evaluate(pcqe.Request{User: "sue", Query: query, Purpose: "analysis"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(resp.Report())

	// --- 4. The manager's view: 0.058 < 0.06, the row is withheld, and
	// the strategy finder proposes the cheapest fix — raising tuple 03
	// from 0.4 to 0.5 for cost 10 (not tuple 02, which costs 10×). ---
	fmt.Println("\n--- mark (manager, purpose investment, β=0.06) ---")
	req := pcqe.Request{User: "mark", Query: query, Purpose: "investment", MinFraction: 1.0}
	resp, err = engine.Evaluate(req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(resp.Report())

	// --- 5. The manager accepts: apply the improvement and re-query.
	// p38 becomes (0.3 ∨ 0.5) · 0.1 = 0.065 > 0.06. ---
	if resp.Proposal != nil {
		if err := engine.Apply(resp.Proposal); err != nil {
			log.Fatal(err)
		}
		fmt.Println("\n--- after applying the improvement ---")
		resp, err = engine.Evaluate(req)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(resp.Report())
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
