// Healthcare models the paper's introduction scenario (after Malin et
// al.): cancer-care data comes in tiers of rising cost and accuracy —
// registry/administrative data is cheap, patient and physician surveys
// cost more, and medical-record abstraction is the most expensive but
// most accurate. Purposes differ too: hypothesis generation tolerates
// medium confidence, while evaluating treatment effectiveness outside a
// controlled study demands high confidence.
//
// The example also exercises the confidence-assignment component: the
// per-row confidences come from the provenance-based trust model
// (providers = registry, survey, abstraction pipelines), not from
// hand-picked constants.
//
// Run with: go run ./examples/healthcare
package main

import (
	"fmt"
	"log"

	"pcqe"
)

func main() {
	// --- 1. Confidence assignment from provenance (Dai et al. 2008
	// style): three data pipelines with different prior trust, items
	// corroborating or contradicting each other. ---
	model, err := pcqe.NewTrustModel(pcqe.DefaultTrustConfig())
	if err != nil {
		log.Fatal(err)
	}
	must(model.AddProvider("registry", 0.55))
	must(model.AddProvider("survey", 0.7))
	must(model.AddProvider("records", 0.92))

	// Reported five-year survival-rate improvements (percent) for two
	// treatments; the entity names tie conflicting reports together.
	items := []pcqe.TrustItem{
		{ID: "regA", Entity: "treatmentA", Value: 12, Providers: []string{"registry"}},
		{ID: "survA", Entity: "treatmentA", Value: 11.5, Providers: []string{"survey"}},
		{ID: "recA", Entity: "treatmentA", Value: 12.2, Providers: []string{"records"}},
		{ID: "regB", Entity: "treatmentB", Value: 3, Providers: []string{"registry"}},
		{ID: "recB", Entity: "treatmentB", Value: 9, Providers: []string{"records"}}, // conflicts with regB
	}
	for _, it := range items {
		must(model.AddItem(it))
	}
	trust := model.Run()
	fmt.Println("--- confidence assignment (provenance fixpoint) ---")
	for _, it := range items {
		fmt.Printf("  %-6s (%s via %v): confidence %.3f\n",
			it.ID, it.Entity, it.Providers, trust.Confidence[it.ID])
	}

	// --- 2. The database: outcome rows carry the assigned confidences
	// and tier-specific improvement costs (registry rows are cheap to
	// re-verify, record abstraction is expensive). ---
	cat := pcqe.NewCatalog()
	outcomes, err := cat.CreateTable("Outcomes", pcqe.NewSchema(
		pcqe.Column{Name: "Treatment", Type: pcqe.TypeString},
		pcqe.Column{Name: "Improvement", Type: pcqe.TypeFloat},
		pcqe.Column{Name: "Source", Type: pcqe.TypeString},
	))
	if err != nil {
		log.Fatal(err)
	}
	costFor := map[string]pcqe.CostFunction{
		"registry": pcqe.LinearCost{Rate: 50},
		"survey":   pcqe.QuadraticCost{A: 300, B: 100},
		"records":  pcqe.ExponentialCost{Scale: 120, Rate: 2.5},
	}
	type rowSpec struct {
		item      string
		treatment string
		value     float64
		source    string
	}
	// One transaction loads the whole study: a single committed version
	// instead of one commit per outcome row.
	tx := cat.Begin()
	for _, rs := range []rowSpec{
		{"regA", "A", 12, "registry"},
		{"survA", "A", 11.5, "survey"},
		{"recA", "A", 12.2, "records"},
		{"regB", "B", 3, "registry"},
		{"recB", "B", 9, "records"},
	} {
		tx.MustInsert(outcomes, trust.Confidence[rs.item], costFor[rs.source],
			pcqe.String(rs.treatment), pcqe.Float(rs.value), pcqe.String(rs.source))
	}
	if _, err := tx.Commit(); err != nil {
		log.Fatal(err)
	}

	// --- 3. Policies: hypothesis generation is lenient, treatment
	// evaluation is strict (the Malin et al. guideline). ---
	rbac := pcqe.NewRBAC()
	rbac.AddRole("researcher")
	rbac.AddRole("oncologist")
	must(rbac.AssignUser("rita", "researcher"))
	must(rbac.AssignUser("omar", "oncologist"))
	purposes := pcqe.NewPurposeTree()
	must(purposes.Add("hypothesis-generation", ""))
	must(purposes.Add("treatment-evaluation", ""))
	store := pcqe.NewPolicyStore(rbac, purposes)
	must(store.Add(pcqe.ConfidencePolicy{Role: "researcher", Purpose: "hypothesis-generation", Beta: 0.4}))
	must(store.Add(pcqe.ConfidencePolicy{Role: "oncologist", Purpose: "treatment-evaluation", Beta: 0.8}))

	engine := pcqe.NewEngine(cat, store, nil)
	const query = `
		SELECT Treatment, Improvement, Source
		FROM Outcomes
		WHERE Improvement > 5
		ORDER BY Improvement DESC`

	fmt.Println("\n--- rita (researcher, hypothesis generation, β=0.4) ---")
	resp, err := engine.Evaluate(pcqe.Request{User: "rita", Query: query, Purpose: "hypothesis-generation"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(resp.Report())

	fmt.Println("\n--- omar (oncologist, treatment evaluation, β=0.8) ---")
	req := pcqe.Request{User: "omar", Query: query, Purpose: "treatment-evaluation", MinFraction: 0.5}
	resp, err = engine.Evaluate(req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(resp.Report())

	// --- 4. Improving the data: the planner prefers the cheap registry
	// re-verification over re-abstracting medical records whenever it
	// suffices, and reports the bill either way. ---
	if resp.Proposal != nil {
		fmt.Printf("\nplan uses %s; applying...\n", resp.Proposal.Solver())
		if err := engine.Apply(resp.Proposal); err != nil {
			log.Fatal(err)
		}
		resp, err = engine.Evaluate(req)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("--- after improvement ---")
		fmt.Print(resp.Report())
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
