package pcqe_test

import (
	"fmt"
	"log"

	"pcqe"
)

// Example walks the paper's running example through the public API: the
// manager's query is withheld at β = 0.06, the planner proposes the
// cheapest confidence increment, and after applying it the row is
// released at confidence 0.065.
func Example() {
	cat := pcqe.NewCatalog()
	proposal, err := cat.CreateTable("Proposal", pcqe.NewSchema(
		pcqe.Column{Name: "Company", Type: pcqe.TypeString},
		pcqe.Column{Name: "Funding", Type: pcqe.TypeFloat},
	))
	if err != nil {
		log.Fatal(err)
	}
	info, err := cat.CreateTable("CompanyInfo", pcqe.NewSchema(
		pcqe.Column{Name: "Company", Type: pcqe.TypeString},
		pcqe.Column{Name: "Income", Type: pcqe.TypeFloat},
	))
	if err != nil {
		log.Fatal(err)
	}
	// ZStart's two proposals (tuples 02/03) and its financials (13).
	proposal.MustInsert(0.3, pcqe.LinearCost{Rate: 1000},
		pcqe.String("ZStart"), pcqe.Float(800_000))
	proposal.MustInsert(0.4, pcqe.LinearCost{Rate: 100},
		pcqe.String("ZStart"), pcqe.Float(900_000))
	info.MustInsert(0.1, pcqe.LinearCost{Rate: 2000},
		pcqe.String("ZStart"), pcqe.Float(120_000))

	rbac := pcqe.NewRBAC()
	rbac.AddRole("manager")
	if err := rbac.AssignUser("mark", "manager"); err != nil {
		log.Fatal(err)
	}
	purposes := pcqe.NewPurposeTree()
	if err := purposes.Add("investment", ""); err != nil {
		log.Fatal(err)
	}
	store := pcqe.NewPolicyStore(rbac, purposes)
	if err := store.Add(pcqe.ConfidencePolicy{Role: "manager", Purpose: "investment", Beta: 0.06}); err != nil {
		log.Fatal(err)
	}

	engine := pcqe.NewEngine(cat, store, nil)
	req := pcqe.Request{
		User: "mark", Purpose: "investment", MinFraction: 1.0,
		Query: `SELECT DISTINCT CompanyInfo.Company, Income
			FROM CompanyInfo JOIN Proposal ON CompanyInfo.Company = Proposal.Company
			WHERE Funding < 1000000`,
	}
	resp, err := engine.Evaluate(req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("released %d, withheld %d\n", len(resp.Released), len(resp.Withheld))
	fmt.Printf("improvement cost: %.0f\n", resp.Proposal.Cost())

	if err := engine.Apply(resp.Proposal); err != nil {
		log.Fatal(err)
	}
	resp, err = engine.Evaluate(req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after improvement: released %d at confidence %.3f\n",
		len(resp.Released), resp.Released[0].Confidence)

	// Output:
	// released 0, withheld 1
	// improvement cost: 10
	// after improvement: released 1 at confidence 0.065
}
