module pcqe

go 1.22
